//! The sans-I/O protocol core: server and member state machines.
//!
//! Everything in this module is pure protocol logic. The state machines
//! ([`RtServer`], [`RtMember`]) consume *decoded messages* plus *timer
//! ticks* and emit their effects through the [`Outputs`] trait — a
//! `(destination, payload)` send or a `(deadline, payload)` timer — with
//! no knowledge of the clock, the scheduler, or the wire. Drivers own
//! all of that:
//!
//! * [`GroupRuntime`](super::GroupRuntime) and
//!   [`ShardedGroupRuntime`](super::shard::ShardedGroupRuntime) run the
//!   machines inside the deterministic discrete-event simulator
//!   (`rekey_sim::Ctx` implements [`Outputs`] by direct delegation, so
//!   the event sequence — and therefore every metrics snapshot — is
//!   byte-identical to the pre-split runtime);
//! * [`UdpGroupDriver`](super::socket::UdpGroupDriver) runs the same
//!   machines over real `std::net::UdpSocket` endpoints and OS threads,
//!   encoding every [`RtMsg`] through the versioned wire codec in
//!   [`wire`](super::wire).
//!
//! The only other seam the machines need is [`SharedHandle`]: the
//! runtime-wide knobs, the shutdown flag, and metric sinks.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use rand::Rng;
use rekey_crypto::Encryption;
use rekey_id::UserId;
use rekey_net::{HostId, Micros, Network};
use rekey_sim::{node_rng, NodeId, SimTime};
use rekey_table::{Member, NeighborRecord, NeighborTable};
use rekey_tmesh::forward::{server_next_hops, user_next_hops_with};

use crate::transport::{PrefixBuf, SplitIndex, SplitIndexMaintainer};
use crate::{GroupServer, UserAgent, WelcomePacket};

use super::{journal, RuntimeConfig};

/// Where a state machine's effects go: the sans-I/O output boundary.
///
/// A driver hands the machines an implementation per delivered event.
/// [`send`](Outputs::send) addresses a peer by logical [`NodeId`];
/// [`timer`](Outputs::timer) requests a self-delivery after a delay
/// (timers are immune to loss — they model local alarms, not packets).
/// [`now`](Outputs::now) is the driver's clock in µs: virtual time under
/// the simulator, monotonic wall-clock µs under the socket driver.
pub trait Outputs {
    /// The driver's current time, in µs.
    fn now(&self) -> SimTime;
    /// The logical id of the node the current event is delivered to.
    fn self_id(&self) -> NodeId;
    /// Emits `msg` toward `to` (subject to the driver's delivery model).
    fn send(&mut self, to: NodeId, msg: RtMsg);
    /// Arms a local timer: redeliver `msg` to this node after `delay` µs.
    fn timer(&mut self, delay: SimTime, msg: RtMsg);
}

/// The key server's node id: always node 0. With `replicas > 1` this is
/// the *initial primary*; replicas occupy nodes `0..replicas` and members
/// are offset past the whole block (see [`Knobs::replicas`]).
pub(crate) const SERVER: NodeId = NodeId(0);

/// Single-replica node mapping (the historical scheme, kept for the
/// drivers that pin `replicas == 1`). Replica-aware mapping lives on the
/// state machines, which read the offset from their [`Knobs`].
pub(crate) fn node_of_host(h: HostId) -> NodeId {
    NodeId(h.0 + 1)
}

pub(crate) fn host_of_member_node(n: NodeId) -> HostId {
    debug_assert!(n != SERVER, "the server has no member host");
    HostId(n.0 - 1)
}

/// One interval's rekey message as multicast over the overlay: the
/// encryptions plus the split index that addresses them (Fig. 5). Shared
/// by reference between all in-flight copies — forwarding a copy costs no
/// payload clone.
pub struct IntervalMessage {
    /// The interval this message keys.
    pub interval: u64,
    /// The server epoch that produced it (bumped on every restart).
    pub epoch: u64,
    /// When the server multicast it (recovery latency accounting).
    pub sent_at: SimTime,
    /// The server's membership-mutation watermark at multicast time; a
    /// receiver behind it (with nothing buffered) missed the tail of
    /// the `NewMember`/`MemberLeft` stream and must resync.
    pub seq: u64,
    /// The batch rekey encryptions.
    pub encryptions: Vec<Encryption>,
    /// Split index over the encryption IDs.
    pub index: SplitIndex,
}

impl std::fmt::Debug for IntervalMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntervalMessage")
            .field("interval", &self.interval)
            .field("epoch", &self.epoch)
            .field("sent_at", &self.sent_at)
            .field("encryptions", &self.encryptions.len())
            .finish_non_exhaustive()
    }
}

/// One replicated key-server mutation, as streamed from the primary to
/// its follower replicas inside [`RtMsg::ReplEntry`]. Replication is
/// deterministic state-machine replication: a follower *re-executes* the
/// op against its own [`GroupServer`] (same seed, same op order — so the
/// same RNG stream and the same keys), it never receives derived state.
#[derive(Debug, Clone)]
pub enum ReplOp {
    /// `request_join(host, at)` — `at` is the primary's clock at
    /// admission, so replayed `joined_at` stamps are identical.
    Join {
        /// The joiner's host.
        host: HostId,
        /// The primary's admission time.
        at: Micros,
    },
    /// `request_leave(id)` — voluntary leave or detected failure alike.
    Leave {
        /// The departing member.
        id: UserId,
    },
    /// `end_interval()` — one batch rekey boundary. Followers mirror the
    /// interval history entry (for post-promotion NACK recovery) and cut
    /// a checkpoint at this watermark.
    Interval {
        /// The primary's multicast time for the interval message.
        sent_at: SimTime,
    },
}

/// Runtime protocol messages. See the module docs for the taxonomy.
#[derive(Debug, Clone)]
pub enum RtMsg {
    /// Server timer: end the current rekey interval.
    IntervalTick {
        /// Stale-chain guard; bumped on server restart.
        gen: u64,
    },
    /// Injected by `GroupRuntime::finish`: process pending membership
    /// work immediately and push every member its latest related set.
    Flush,
    /// Injected at a node when its outage window ends: the process comes
    /// back up and re-arms its timers (the server additionally restores
    /// its journal and bumps its epoch).
    Restart,
    /// Injected at a joining node; forwarded to the server and
    /// retransmitted with backoff until `JoinAccepted`.
    JoinRequest,
    /// Server → joiner: admission into the overlay with a ready table.
    JoinAccepted {
        /// The new member's record.
        member: Member,
        /// The joiner's neighbor table at admission time.
        table: Box<NeighborTable>,
        /// Server epoch of the snapshot.
        epoch: u64,
        /// Mutation sequence number the snapshot reflects.
        seq: u64,
    },
    /// Server → joiner at interval end: the key material.
    Welcome {
        /// Path keys and interval.
        welcome: WelcomePacket,
        /// Server epoch issuing the keys.
        epoch: u64,
        /// When the next interval ends, anchoring the NACK check timer.
        next_interval_at: SimTime,
    },
    /// Server → members: insert a just-admitted member (mutation `seq`).
    NewMember {
        /// The new member.
        record: Member,
        /// RTT from the receiver to the new member.
        rtt: Micros,
        /// Server epoch of the mutation.
        epoch: u64,
        /// Mutation sequence number; applied strictly in order.
        seq: u64,
    },
    /// Injected at a leaving node; forwarded to the server and
    /// retransmitted with backoff until `LeaveAck`.
    LeaveRequest,
    /// Server → leaver, once the departure has reached the journal.
    LeaveAck,
    /// Server → members: departure plus repair candidates (§3.2),
    /// mutation `seq`.
    MemberLeft {
        /// Who departed.
        departed: UserId,
        /// Replacement candidates with receiver-personalized RTTs.
        replacements: Vec<(Member, Micros)>,
        /// Server epoch of the mutation.
        epoch: u64,
        /// Mutation sequence number; applied strictly in order.
        seq: u64,
    },
    /// Member → server: a neighbor stopped answering pings. Re-sent every
    /// beat until the repair broadcast arrives, so a lost notice (server
    /// outage, partition) only delays detection.
    FailureNotice {
        /// The suspect.
        failed: UserId,
    },
    /// One overlay copy of an interval's rekey message (lossy).
    Forward {
        /// `forward_level` of Fig. 2 at the receiver.
        level: usize,
        /// The `(i, j)`-subtree prefix this copy serves (split key).
        prefix: PrefixBuf,
        /// The shared interval message.
        message: Arc<IntervalMessage>,
    },
    /// Member → server: interval missing past its deadline.
    Nack {
        /// The missing interval.
        interval: u64,
    },
    /// Server → member: the member's related set for a NACKed interval.
    Recover {
        /// The recovered interval.
        interval: u64,
        /// Exactly the requester's related encryptions (Lemma 3).
        encryptions: Vec<Encryption>,
        /// When the interval was originally multicast (latency
        /// accounting).
        sent_at: SimTime,
        /// The server's mutation watermark (tail-drop detector; this is
        /// the only broadcast the shutdown flush sends every member).
        seq: u64,
    },
    /// Member → neighbor: heartbeat probe.
    Ping {
        /// Correlation token.
        token: u64,
    },
    /// Neighbor → member: heartbeat reply.
    Pong {
        /// Correlation token.
        token: u64,
    },
    /// Member → server: heartbeat liveness/membership probe.
    ServerPing {
        /// The prober's own id, for the server to verify.
        id: UserId,
    },
    /// Server → member: the prober is a member in good standing. Carries
    /// the member's evidence triple.
    ServerPong {
        /// Current server epoch.
        epoch: u64,
        /// Latest mutation sequence number.
        seq: u64,
        /// Latest completed interval.
        interval: u64,
    },
    /// Server → node: the probed or requested id is not (or no longer) a
    /// member under this server. The node rejoins from scratch.
    NotMember {
        /// The id the server disowns.
        id: UserId,
    },
    /// Member → server: request a full state snapshot (sequence gap,
    /// epoch change, or NACK retries exhausted).
    ResyncRequest {
        /// The requester's id, for the server to verify.
        id: UserId,
    },
    /// Server → member: a full state snapshot — record, table, and
    /// current path keys.
    Resync {
        /// The member's record.
        member: Member,
        /// The member's neighbor table as the server computes it.
        table: Box<NeighborTable>,
        /// Current path keys and interval.
        welcome: WelcomePacket,
        /// Server epoch of the snapshot.
        epoch: u64,
        /// Mutation sequence number the snapshot reflects.
        seq: u64,
        /// When the next interval ends, re-anchoring the check timer.
        next_interval_at: SimTime,
    },
    /// Member timer: ping neighbors, evict the unresponsive.
    HeartbeatTick {
        /// Stale-chain guard; bumped on member restart or rejoin.
        gen: u64,
    },
    /// Member timer: NACK intervals still missing past their deadline.
    IntervalCheck {
        /// Stale-chain guard; bumped when the timer is re-anchored.
        gen: u64,
    },
    /// Member timer: fire due retry entries.
    RetryTick {
        /// Stale-chain guard; bumped on every re-schedule.
        gen: u64,
    },
    /// Primary → follower: one replication-log entry. Streamed on append
    /// and re-sent from the follower's acknowledged watermark on every
    /// replication tick, so losses and outages self-heal.
    ReplEntry {
        /// Log position (first entry is 1).
        idx: u64,
        /// Server epoch the op was appended under.
        epoch: u64,
        /// The mutation to replay.
        op: ReplOp,
    },
    /// Follower → primary: contiguous replay progress.
    ReplAck {
        /// The acknowledging replica's index.
        replica: usize,
        /// Highest contiguously applied log index.
        idx: u64,
    },
    /// Primary → follower: liveness beacon plus the log shape. Followers
    /// answer with a `ReplAck` so the primary learns their watermark even
    /// when no new entry flows.
    ReplHeartbeat {
        /// The sender's server epoch.
        epoch: u64,
        /// The head of the sender's log (last appended index).
        idx: u64,
        /// The sender's replica index.
        replica: usize,
        /// Oldest log index the sender can still resend; a follower
        /// behind `floor` can never catch up incrementally.
        floor: u64,
    },
    /// Follower → replicas: the primary looks dead, stand for election.
    /// Carries the candidate's replay watermark; the most-caught-up
    /// candidate (ties broken toward the lowest replica index) wins.
    Candidacy {
        /// The candidate's server epoch.
        epoch: u64,
        /// The candidate's applied log watermark.
        idx: u64,
        /// The candidate's replica index.
        replica: usize,
    },
    /// Primary timer: resend unacknowledged log entries and heartbeat the
    /// followers.
    ReplTick {
        /// Stale-chain guard; bumped on every role change.
        gen: u64,
    },
    /// Follower timer: check primary liveness, start an election on
    /// silence.
    ReplCheck {
        /// Stale-chain guard; bumped on every role change.
        gen: u64,
    },
    /// Follower timer: the election's candidacy window closed — promote
    /// the winner.
    ElectionTick {
        /// Stale-chain guard; bumped on every role change.
        gen: u64,
    },
}

/// Copyable timing/retry knobs shared by every node of one runtime.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Knobs {
    pub(crate) rekey_period: SimTime,
    pub(crate) heartbeat_period: SimTime,
    pub(crate) nack_grace: SimTime,
    pub(crate) retry_base: SimTime,
    pub(crate) retry_cap: u32,
    pub(crate) seed: u64,
    /// Server replicas: nodes `0..replicas` run [`RtServer`]s (node 0 is
    /// the initial primary), members are offset past the block. `1`
    /// reproduces the historical single-server runtime bit for bit.
    pub(crate) replicas: usize,
}

impl Knobs {
    pub(crate) fn of_config(config: &RuntimeConfig) -> Knobs {
        Knobs {
            rekey_period: config.rekey_period,
            heartbeat_period: config.heartbeat_period,
            nack_grace: config.nack_grace,
            retry_base: config.retry_base,
            retry_cap: config.retry_cap,
            seed: config.seed,
            replicas: config.replicas,
        }
    }

    /// Exponential backoff: `retry_base << attempts`, with the exponent
    /// saturated at the retry cap.
    fn backoff(&self, attempts: u32) -> SimTime {
        self.retry_base << attempts.min(self.retry_cap)
    }

    /// Replication stream period: entries are resent and heartbeats sent
    /// twice per rekey interval, so a follower is never more than half an
    /// interval behind a live primary.
    pub(crate) fn repl_period(&self) -> SimTime {
        (self.rekey_period / 2).max(1)
    }

    /// Follower liveness-check period.
    pub(crate) fn repl_check_period(&self) -> SimTime {
        self.rekey_period.max(1)
    }

    /// Primary silence past this threshold starts an election: two full
    /// rekey periods, i.e. at least four missed replication heartbeats.
    pub(crate) fn primary_silence(&self) -> SimTime {
        2 * self.rekey_period
    }
}

/// What a member needs from its runtime: the knobs, the shutdown flag,
/// and metric sinks. The classic runtime hands every member an
/// `Rc<Shared>` (single-threaded, one registry); the sharded runtime
/// hands out `Arc<shard::ShardCore>` handles (`Send`, per-shard local
/// sinks merged deterministically after the workers join).
pub(crate) trait SharedHandle {
    /// The timing/retry knobs.
    fn knobs(&self) -> &Knobs;
    /// `true` once the runtime began its shutdown drain.
    fn is_shutdown(&self) -> bool;
    /// Records the encryption count of one received split copy.
    fn record_split_payload(&self, v: u64);
    /// Records the copies sent in one forwarding occasion.
    fn record_forward_fanout(&self, v: u64);
    /// Records one interval application: the apply-delay histogram plus
    /// an `"apply"`/`"recovery"` span (span sinks may be a no-op).
    fn record_apply(&self, span: &'static str, sent_at: SimTime, now: SimTime, interval: u64);
    /// Records the encryption count of one unicast `Recover` reply.
    fn record_recovery_size(&self, v: u64);
    /// Records a tracing span (no-op for handles without a span sink).
    fn span(&self, name: &'static str, start: SimTime, end: SimTime, detail: u64);
}

/// Server-side counters of one runtime session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Completed rekey intervals.
    pub intervals: u64,
    /// Joins admitted.
    pub joins: u64,
    /// Departures processed (leaves + detected failures).
    pub departures: u64,
    /// Departures that arrived as failure notices.
    pub failures_detected: u64,
    /// `Forward` copies seeded by the server.
    pub forward_copies: u64,
    /// NACKs received.
    pub nacks: u64,
    /// Encryptions re-sent via unicast recovery.
    pub recovery_encryptions: u64,
    /// Welcome packets issued.
    pub welcomes: u64,
    /// Full state snapshots served (`Resync` replies).
    pub resyncs: u64,
    /// Server restarts (journal restores + epoch bumps).
    pub restarts: u64,
    /// Checkpoints written to the journal.
    pub checkpoints: u64,
    /// Leave acknowledgements sent (each after a covering checkpoint).
    pub leave_acks: u64,
    /// Elections this replica started after primary silence.
    pub elections: u64,
    /// Times this replica promoted itself to primary.
    pub promotions: u64,
    /// Mutations known lost across restarts and promotions: ops past the
    /// restored checkpoint (single-replica restart) or past the promoted
    /// follower's replay watermark (failover). The affected members
    /// re-request through the normal `NotMember`/leave-retry paths.
    pub lost_mutations: u64,
    /// Peak replication lag (log head minus the slowest known follower
    /// watermark) observed at any replication tick.
    pub repl_lag_peak: u64,
}

/// A server replica's role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplRole {
    /// Serves members, appends to the log, streams to followers.
    Primary,
    /// Replays the primary's log; ignores member-facing traffic.
    Follower,
}

/// A follower's in-flight election.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ElectionState {
    /// Best watermark seen among candidacies (our own included).
    best_idx: u64,
    /// The replica holding `best_idx` (lowest index wins ties).
    best_replica: usize,
}

/// Entries the primary keeps for resending to lagging followers. Far
/// beyond any lag a live session produces; a follower behind the pruned
/// floor is declared divergent rather than silently skipped.
const LOG_KEEP: usize = 4096;

/// Entries resent per follower per replication tick.
const REPL_BATCH: usize = 64;

/// Per-replica replication state of one [`RtServer`].
#[derive(Debug)]
pub(crate) struct Replication {
    pub(crate) role: ReplRole,
    /// This replica's index (`0..Knobs::replicas`; also its node id).
    pub(crate) replica: usize,
    /// `false` once replay diverged (an op failed to re-execute, or the
    /// primary's log floor passed our watermark): the replica stops
    /// participating until its next `Restart` rolls it back to a
    /// checkpoint.
    pub(crate) active: bool,
    /// Stale-chain guard shared by `ReplTick`/`ReplCheck`/`ElectionTick`;
    /// bumped on every role change.
    pub(crate) gen: u64,
    /// The tail of the op log (primary: appended; follower: applied),
    /// kept for resending. Contiguous, ending at `next_idx - 1`.
    pub(crate) log: VecDeque<journal::Entry>,
    /// Next log index to append (first entry gets 1).
    pub(crate) next_idx: u64,
    /// Primary: per-replica acknowledged watermarks; `u64::MAX` means
    /// unknown (no ack yet — resends wait for the first ack so a freshly
    /// promoted primary never floods a replica it knows nothing about).
    pub(crate) acked: Vec<u64>,
    /// Follower: highest contiguously applied log index.
    pub(crate) applied_idx: u64,
    /// Follower: out-of-order entries awaiting their predecessors.
    pub(crate) entry_buf: BTreeMap<u64, journal::Entry>,
    /// Follower: highest log head the primary has advertised; the gap to
    /// `applied_idx` is what a promotion would lose.
    pub(crate) primary_idx_seen: u64,
    /// Follower: when the primary was last heard (entry or heartbeat).
    pub(crate) last_primary_at: SimTime,
    /// Follower: the election in progress, if any.
    pub(crate) election: Option<ElectionState>,
}

impl Replication {
    pub(crate) fn new(replica: usize, replicas: usize) -> Replication {
        let mut acked = vec![u64::MAX; replicas.max(1)];
        acked[replica] = 0;
        Replication {
            role: if replica == 0 {
                ReplRole::Primary
            } else {
                ReplRole::Follower
            },
            replica,
            active: true,
            gen: 0,
            log: VecDeque::new(),
            next_idx: 1,
            acked,
            applied_idx: 0,
            entry_buf: BTreeMap::new(),
            primary_idx_seen: 0,
            last_primary_at: 0,
            election: None,
        }
    }

    /// Oldest log index still held (`next_idx` when the log is empty).
    fn floor(&self) -> u64 {
        self.next_idx - self.log.len() as u64
    }
}

pub(crate) struct RtServer<NET, S: SharedHandle> {
    pub(crate) net: Rc<NET>,
    pub(crate) shared: S,
    pub(crate) server: GroupServer,
    /// Bumped on every restart; members resync when they observe a bump.
    pub(crate) epoch: u64,
    /// Membership-mutation sequence number (one per join/leave/failure).
    pub(crate) seq: u64,
    /// Stale-timer guard for `IntervalTick`; bumped on restart.
    pub(crate) tick_gen: u64,
    /// When the current interval ends (anchors member check timers).
    pub(crate) next_interval_at: SimTime,
    /// When the previous rekey round ran (start anchor of the next
    /// "interval" span, so span durations show round spacing).
    pub(crate) last_round_at: SimTime,
    /// Interval messages kept for unicast recovery.
    pub(crate) history: BTreeMap<u64, Arc<IntervalMessage>>,
    /// Incrementally maintains the per-interval split index from the
    /// previous interval's sorted ID sequence instead of rebuilding it.
    pub(crate) split_index: SplitIndexMaintainer,
    /// The crash journal: one checkpoint per completed interval.
    pub(crate) journal: journal::Journal,
    /// Leavers to acknowledge once the next checkpoint covers their
    /// departure (an acknowledged leave must never roll back).
    pub(crate) pending_leave_acks: Vec<NodeId>,
    /// Replication role, log, and election state.
    pub(crate) repl: Replication,
    pub(crate) stats: ServerStats,
}

impl<NET: Network, S: SharedHandle> RtServer<NET, S> {
    pub(crate) fn receive(&mut self, ctx: &mut impl Outputs, from: NodeId, msg: RtMsg) {
        // A restart revives even a divergent replica (it rolls back to
        // its checkpoint); everything else requires an active one.
        if let RtMsg::Restart = msg {
            return self.restart(ctx);
        }
        if !self.repl.active {
            return;
        }
        match msg {
            RtMsg::ReplEntry { idx, epoch, op } => {
                self.on_repl_entry(ctx, from, journal::Entry { idx, epoch, op });
                return;
            }
            RtMsg::ReplAck { replica, idx } => {
                self.on_repl_ack(replica, idx);
                return;
            }
            RtMsg::ReplHeartbeat {
                epoch,
                idx,
                replica,
                floor,
            } => {
                self.on_repl_heartbeat(ctx, from, epoch, idx, replica, floor);
                return;
            }
            RtMsg::Candidacy {
                epoch,
                idx,
                replica,
            } => {
                self.on_candidacy(ctx, from, epoch, idx, replica);
                return;
            }
            RtMsg::ReplTick { gen } => {
                if gen == self.repl.gen && self.repl.role == ReplRole::Primary {
                    self.repl_tick(ctx);
                }
                return;
            }
            RtMsg::ReplCheck { gen } => {
                if gen == self.repl.gen && self.repl.role == ReplRole::Follower {
                    self.repl_check(ctx);
                }
                return;
            }
            RtMsg::ElectionTick { gen } => {
                if gen == self.repl.gen && self.repl.role == ReplRole::Follower {
                    self.election_tick(ctx);
                }
                return;
            }
            _ => {}
        }
        // Member-facing traffic is the primary's alone: a follower stays
        // silent and the member's retry/rotation machinery finds the
        // primary within a replica block's worth of attempts.
        if self.repl.role != ReplRole::Primary {
            return;
        }
        match msg {
            RtMsg::IntervalTick { gen } if gen == self.tick_gen => self.end_interval(ctx),
            RtMsg::Flush => self.flush(ctx),
            RtMsg::JoinRequest => self.admit(ctx, from),
            RtMsg::LeaveRequest => {
                let host = self.member_host(from);
                let id = self.member_by_host(host).map(|m| m.id.clone());
                if let Some(id) = id {
                    self.depart(ctx, id);
                }
                // Ack — even for an unknown host (the member's retransmit
                // after its departure was checkpointed but the ack lost) —
                // rides the next checkpoint, never earlier.
                if !self.pending_leave_acks.contains(&from) {
                    self.pending_leave_acks.push(from);
                }
            }
            RtMsg::FailureNotice { failed } => {
                // Ignore accusations from non-members: a wrongfully
                // departed member behind a healed partition would
                // otherwise depart half the group with its stale
                // suspicions before its own `NotMember` lands.
                if self.member_by_host(self.member_host(from)).is_none() {
                    return;
                }
                if self.server.group().member(&failed).is_some() {
                    self.stats.failures_detected += 1;
                    self.depart(ctx, failed);
                }
                // Already departed: the sequenced `MemberLeft` broadcast
                // is already on its way to the accuser; nothing to do.
            }
            RtMsg::Nack { interval } => {
                self.stats.nacks += 1;
                let host = self.member_host(from);
                let member = self.member_by_host(host).cloned();
                let (Some(member), Some(message)) = (member, self.history.get(&interval)) else {
                    // Unknown member or rolled-back interval: the prober's
                    // heartbeat will sort it out (`NotMember` / epoch).
                    return;
                };
                let encryptions: Vec<Encryption> = message
                    .index
                    .indices(member.id.digits())
                    .map(|e| message.encryptions[e].clone())
                    .collect();
                self.stats.recovery_encryptions += encryptions.len() as u64;
                self.shared.record_recovery_size(encryptions.len() as u64);
                ctx.send(
                    from,
                    RtMsg::Recover {
                        interval,
                        encryptions,
                        sent_at: message.sent_at,
                        seq: self.seq,
                    },
                );
            }
            RtMsg::ServerPing { id } => {
                if self.verified(&id, from) {
                    ctx.send(
                        from,
                        RtMsg::ServerPong {
                            epoch: self.epoch,
                            seq: self.seq,
                            interval: self.server.interval(),
                        },
                    );
                } else {
                    ctx.send(from, RtMsg::NotMember { id });
                }
            }
            RtMsg::ResyncRequest { id } => {
                if !self.verified(&id, from) {
                    ctx.send(from, RtMsg::NotMember { id });
                    return;
                }
                // A member admitted during the *current* interval is in
                // the roster but not yet keyed — its first welcome rides
                // the next interval boundary and supersedes any snapshot
                // we could build now. Stay silent; the member's resync
                // retry re-asks with backoff until the welcome lands.
                let Some(welcome) = self.server.refresh_welcome(&id) else {
                    return;
                };
                self.stats.resyncs += 1;
                let group = self.server.group();
                let idx = group.index_of(&id).expect("verified member has an index");
                let member = group.members()[idx].clone();
                let table = group.table(idx).clone();
                ctx.send(
                    from,
                    RtMsg::Resync {
                        member,
                        table: Box::new(table),
                        welcome,
                        epoch: self.epoch,
                        seq: self.seq,
                        next_interval_at: self.next_interval_at,
                    },
                );
            }
            _ => {}
        }
    }

    fn member_by_host(&self, host: HostId) -> Option<&Member> {
        self.server
            .group()
            .members()
            .iter()
            .find(|m| m.host == host)
    }

    /// The node hosting `host`'s member, offset past the replica block.
    fn member_node(&self, host: HostId) -> NodeId {
        NodeId(host.0 + self.shared.knobs().replicas)
    }

    /// The member host behind node `from`.
    fn member_host(&self, from: NodeId) -> HostId {
        let replicas = self.shared.knobs().replicas;
        debug_assert!(from.0 >= replicas, "server replicas have no member host");
        HostId(from.0 - replicas)
    }

    /// `true` iff `id` is a member AND the claim comes from its host.
    fn verified(&self, id: &UserId, from: NodeId) -> bool {
        self.server
            .group()
            .member(id)
            .is_some_and(|m| m.host == self.member_host(from))
    }

    fn end_interval(&mut self, ctx: &mut impl Outputs) {
        if self.shared.is_shutdown() {
            return;
        }
        self.rekey_round(ctx);
        ctx.timer(
            self.shared.knobs().rekey_period,
            RtMsg::IntervalTick { gen: self.tick_gen },
        );
    }

    /// Ends one interval: welcomes, multicast, checkpoint, leave acks.
    fn rekey_round(&mut self, ctx: &mut impl Outputs) {
        self.append_op(ctx, ReplOp::Interval { sent_at: ctx.now() });
        let mut outcome = self.server.end_interval();
        let encryptions = outcome.take_encryptions();
        self.stats.intervals += 1;
        self.next_interval_at = ctx.now() + self.shared.knobs().rekey_period;
        for welcome in outcome.welcomes {
            self.stats.welcomes += 1;
            let host = self
                .server
                .group()
                .member(&welcome.id)
                .expect("welcomed member is in the group")
                .host;
            ctx.send(
                self.member_node(host),
                RtMsg::Welcome {
                    welcome,
                    epoch: self.epoch,
                    next_interval_at: self.next_interval_at,
                },
            );
        }
        let message = Arc::new(IntervalMessage {
            interval: outcome.interval,
            epoch: self.epoch,
            sent_at: ctx.now(),
            seq: self.seq,
            index: self.split_index.advance(&encryptions),
            encryptions,
        });
        self.history.insert(outcome.interval, Arc::clone(&message));
        while self.history.len() > journal::HISTORY_WINDOW {
            self.history.pop_first();
        }
        // Empty intervals still multicast: members advance their interval
        // counter from the (empty) related set, keeping NACK checks quiet.
        let mut fanout = 0u64;
        for hop in server_next_hops(self.server.group().server_table()) {
            self.stats.forward_copies += 1;
            fanout += 1;
            ctx.send(
                self.member_node(hop.neighbor.member.host),
                RtMsg::Forward {
                    level: hop.forward_level,
                    prefix: PrefixBuf::of_hop(&hop),
                    message: Arc::clone(&message),
                },
            );
        }
        self.shared.record_forward_fanout(fanout);
        self.shared
            .span("interval", self.last_round_at, ctx.now(), outcome.interval);
        self.last_round_at = ctx.now();
        self.checkpoint(ctx);
    }

    /// Records the interval-boundary checkpoint — *after* the multicast,
    /// so no member is ever ahead of the journal — then releases the
    /// leave acks it covers.
    fn checkpoint(&mut self, ctx: &mut impl Outputs) {
        // Guard *before* building the checkpoint: cloning the server is
        // O(members) per interval, which a disabled journal (the sharded
        // mega runtime) must never pay.
        if self.journal.is_enabled() {
            self.journal.record(journal::Checkpoint {
                server: self.server.clone(),
                seq: self.seq,
                log_idx: self.repl.next_idx - 1,
                history: self.history.clone(),
            });
            self.stats.checkpoints += 1;
        }
        for node in std::mem::take(&mut self.pending_leave_acks) {
            self.stats.leave_acks += 1;
            ctx.send(node, RtMsg::LeaveAck);
        }
    }

    /// Shutdown flush: fold any pending membership work into an interval,
    /// then push every member its latest related set so the final
    /// interval is discoverable even if every multicast copy was lost.
    fn flush(&mut self, ctx: &mut impl Outputs) {
        let (joins, leaves) = self.server.pending();
        if joins > 0 || leaves > 0 {
            self.rekey_round(ctx);
        }
        if let Some((&interval, message)) = self.history.iter().next_back() {
            let members: Vec<Member> = self.server.group().members().to_vec();
            for member in members {
                let encryptions: Vec<Encryption> = message
                    .index
                    .indices(member.id.digits())
                    .map(|e| message.encryptions[e].clone())
                    .collect();
                self.stats.recovery_encryptions += encryptions.len() as u64;
                self.shared.record_recovery_size(encryptions.len() as u64);
                ctx.send(
                    self.member_node(member.host),
                    RtMsg::Recover {
                        interval,
                        encryptions,
                        sent_at: message.sent_at,
                        seq: self.seq,
                    },
                );
            }
        }
        self.checkpoint(ctx);
    }

    /// The server process respawns at the end of an outage window.
    ///
    /// Single replica: restore the latest checkpoint (mid-interval
    /// mutations since then are lost by design — the affected members
    /// re-request), bump the epoch, and re-announce with an immediate
    /// interval. With replicas, the revived process instead rejoins as a
    /// *follower*: the acting primary (possibly a promoted peer) streams
    /// it forward from its checkpoint watermark, and if no primary is
    /// alive its own liveness check escalates to an election.
    fn restart(&mut self, ctx: &mut impl Outputs) {
        if self.shared.knobs().replicas > 1 {
            return self.restart_replica(ctx);
        }
        self.stats.restarts += 1;
        self.epoch += 1;
        self.shared
            .span("restart", ctx.now(), ctx.now(), self.epoch);
        self.tick_gen += 1;
        self.pending_leave_acks.clear();
        if let Some(cp) = self.journal.restore() {
            self.stats.lost_mutations += self.seq.saturating_sub(cp.seq);
            self.server = cp.server;
            self.seq = cp.seq;
            self.history = cp.history;
        }
        // The maintainer's previous-interval sequence may describe an
        // interval the rollback discarded; start from a clean rebuild.
        self.split_index = SplitIndexMaintainer::default();
        // The immediate interval is the restart beacon: its `Forward`
        // copies carry the new epoch, and every member that sees it (or
        // the next `ServerPong`) resyncs.
        self.end_interval(ctx);
    }

    /// Multi-replica restart: roll back to the checkpoint, come up as a
    /// follower. No epoch bump and no beacon — only a *promotion* speaks
    /// to members, so a revived ex-primary cannot split-brain the group.
    fn restart_replica(&mut self, ctx: &mut impl Outputs) {
        self.stats.restarts += 1;
        self.shared
            .span("restart", ctx.now(), ctx.now(), self.epoch);
        self.tick_gen += 1;
        self.repl.gen += 1;
        self.pending_leave_acks.clear();
        self.repl.role = ReplRole::Follower;
        self.repl.active = true;
        self.repl.entry_buf.clear();
        self.repl.election = None;
        if let Some(cp) = self.journal.restore() {
            self.server = cp.server;
            self.seq = cp.seq;
            self.history = cp.history;
            self.repl.applied_idx = cp.log_idx;
            self.repl.log.retain(|e| e.idx <= cp.log_idx);
            self.repl.next_idx = cp.log_idx + 1;
            self.split_index = SplitIndexMaintainer::default();
        }
        // No checkpoint (first-interval crash): keep the live state, as
        // the single-replica path does.
        self.repl.primary_idx_seen = self.repl.applied_idx;
        self.repl.last_primary_at = ctx.now();
        ctx.timer(
            self.shared.knobs().repl_check_period(),
            RtMsg::ReplCheck { gen: self.repl.gen },
        );
    }

    fn admit(&mut self, ctx: &mut impl Outputs, from: NodeId) {
        let host = self.member_host(from);
        if let Some(member) = self.member_by_host(host).cloned() {
            // Retransmitted join (the original accept was lost): resend
            // the current snapshot without a new mutation.
            let group = self.server.group();
            let idx = group.index_of(&member.id).expect("member has an index");
            let table = group.table(idx).clone();
            ctx.send(
                from,
                RtMsg::JoinAccepted {
                    member,
                    table: Box::new(table),
                    epoch: self.epoch,
                    seq: self.seq,
                },
            );
            return;
        }
        let at = ctx.now();
        let id = self
            .server
            .request_join(host, &*self.net, at)
            .expect("ID space sized for the churn trace");
        self.stats.joins += 1;
        self.seq += 1;
        self.append_op(ctx, ReplOp::Join { host, at });
        let group = self.server.group();
        let idx = group.index_of(&id).expect("member was just admitted");
        let member = group.members()[idx].clone();
        let table = group.table(idx).clone();
        for existing in group.members() {
            if existing.id == id {
                continue;
            }
            ctx.send(
                self.member_node(existing.host),
                RtMsg::NewMember {
                    record: member.clone(),
                    rtt: self.net.rtt(existing.host, member.host),
                    epoch: self.epoch,
                    seq: self.seq,
                },
            );
        }
        ctx.send(
            from,
            RtMsg::JoinAccepted {
                member,
                table: Box::new(table),
                epoch: self.epoch,
                seq: self.seq,
            },
        );
    }

    fn depart(&mut self, ctx: &mut impl Outputs, id: UserId) {
        self.server
            .request_leave(&id, &*self.net)
            .expect("departing member is in the group");
        self.stats.departures += 1;
        self.seq += 1;
        self.append_op(ctx, ReplOp::Leave { id: id.clone() });
        let group = self.server.group();
        let candidates = crate::repair::replacement_candidates(
            group.spec().depth(),
            group.k(),
            &id,
            group.members().iter(),
            |m| &m.id,
        );
        for existing in group.members() {
            let replacements: Vec<(Member, Micros)> = candidates
                .iter()
                .map(|c| ((*c).clone(), self.net.rtt(existing.host, c.host)))
                .collect();
            ctx.send(
                self.member_node(existing.host),
                RtMsg::MemberLeft {
                    departed: id.clone(),
                    replacements,
                    epoch: self.epoch,
                    seq: self.seq,
                },
            );
        }
    }

    // ---- replication: primary side -------------------------------------

    /// Appends one mutation op to the replication log and streams it to
    /// every other replica. A no-op with a single replica, keeping the
    /// classic runtime byte-identical to its pre-replication behavior.
    fn append_op(&mut self, ctx: &mut impl Outputs, op: ReplOp) {
        let replicas = self.shared.knobs().replicas;
        if replicas <= 1 {
            return;
        }
        let entry = journal::Entry {
            idx: self.repl.next_idx,
            epoch: self.epoch,
            op,
        };
        for r in 0..replicas {
            if r == self.repl.replica {
                continue;
            }
            ctx.send(
                NodeId(r),
                RtMsg::ReplEntry {
                    idx: entry.idx,
                    epoch: entry.epoch,
                    op: entry.op.clone(),
                },
            );
        }
        self.repl.log.push_back(entry);
        while self.repl.log.len() > LOG_KEEP {
            self.repl.log.pop_front();
        }
        let idx = self.repl.next_idx;
        self.repl.next_idx += 1;
        self.repl.acked[self.repl.replica] = idx;
        // Kept in lockstep with the log head so an ex-primary's `Restart`
        // and divergence checks work uniformly across roles.
        self.repl.applied_idx = idx;
    }

    /// Periodic replication tick (primary): heartbeat every peer replica
    /// and resend the log tail past each acknowledged watermark. Lost
    /// entries and lost acks both heal here — the stream needs no
    /// per-entry retry state, just this bounded resend loop.
    fn repl_tick(&mut self, ctx: &mut impl Outputs) {
        let replicas = self.shared.knobs().replicas;
        let head = self.repl.next_idx - 1;
        let floor = self.repl.floor();
        for r in 0..replicas {
            if r == self.repl.replica {
                continue;
            }
            ctx.send(
                NodeId(r),
                RtMsg::ReplHeartbeat {
                    epoch: self.epoch,
                    idx: head,
                    replica: self.repl.replica,
                    floor,
                },
            );
            let acked = self.repl.acked[r];
            if acked == u64::MAX || acked >= head {
                continue;
            }
            self.stats.repl_lag_peak = self.stats.repl_lag_peak.max(head - acked);
            let from_idx = (acked + 1).max(floor);
            let to_idx = head.min(acked + REPL_BATCH as u64);
            for idx in from_idx..=to_idx {
                let entry = &self.repl.log[(idx - floor) as usize];
                ctx.send(
                    NodeId(r),
                    RtMsg::ReplEntry {
                        idx: entry.idx,
                        epoch: entry.epoch,
                        op: entry.op.clone(),
                    },
                );
            }
        }
        if !self.shared.is_shutdown() {
            ctx.timer(
                self.shared.knobs().repl_period(),
                RtMsg::ReplTick { gen: self.repl.gen },
            );
        }
    }

    /// An ack from follower `replica`: advance its known watermark.
    fn on_repl_ack(&mut self, replica: usize, idx: u64) {
        if self.repl.role != ReplRole::Primary || replica >= self.repl.acked.len() {
            return;
        }
        let slot = &mut self.repl.acked[replica];
        if *slot == u64::MAX || idx > *slot {
            *slot = idx;
        }
    }

    // ---- replication: follower side ------------------------------------

    /// A streamed log entry: buffer, drain contiguously, replay, ack the
    /// applied watermark back to the sender.
    fn on_repl_entry(&mut self, ctx: &mut impl Outputs, from: NodeId, entry: journal::Entry) {
        if self.repl.role != ReplRole::Follower {
            return;
        }
        self.repl.last_primary_at = ctx.now();
        self.repl.election = None;
        self.epoch = self.epoch.max(entry.epoch);
        self.repl.primary_idx_seen = self.repl.primary_idx_seen.max(entry.idx);
        if entry.idx > self.repl.applied_idx {
            self.repl.entry_buf.insert(entry.idx, entry);
        }
        while let Some(entry) = self.repl.entry_buf.remove(&(self.repl.applied_idx + 1)) {
            if !self.apply_entry(&entry) {
                // Replay diverged: freeze until the next `Restart` rolls
                // this replica back to its checkpoint.
                self.repl.active = false;
                return;
            }
            self.repl.applied_idx = entry.idx;
            self.repl.next_idx = entry.idx + 1;
            self.repl.log.push_back(entry);
            while self.repl.log.len() > LOG_KEEP {
                self.repl.log.pop_front();
            }
        }
        ctx.send(
            from,
            RtMsg::ReplAck {
                replica: self.repl.replica,
                idx: self.repl.applied_idx,
            },
        );
    }

    /// Replays one op against this follower's own state machine; `false`
    /// on divergence. Deterministic replication: the follower re-executes
    /// the same inputs against the same seeded state, so its tree, RNG
    /// stream, and history converge on the primary's — without member
    /// traffic and without stats (each mutation is counted once, by the
    /// primary, so summed snapshots match a single-replica run).
    fn apply_entry(&mut self, entry: &journal::Entry) -> bool {
        match &entry.op {
            ReplOp::Join { host, at } => {
                if self.server.request_join(*host, &*self.net, *at).is_err() {
                    return false;
                }
                self.seq += 1;
            }
            ReplOp::Leave { id } => {
                if self.server.request_leave(id, &*self.net).is_err() {
                    return false;
                }
                self.seq += 1;
            }
            ReplOp::Interval { sent_at } => {
                let mut outcome = self.server.end_interval();
                let message = Arc::new(IntervalMessage {
                    interval: outcome.interval,
                    epoch: entry.epoch,
                    sent_at: *sent_at,
                    seq: self.seq,
                    index: self.split_index.advance(outcome.encryptions()),
                    encryptions: outcome.take_encryptions(),
                });
                self.history.insert(outcome.interval, message);
                while self.history.len() > journal::HISTORY_WINDOW {
                    self.history.pop_first();
                }
                self.next_interval_at = *sent_at + self.shared.knobs().rekey_period;
                // The follower checkpoints at the same boundaries the
                // primary does, so a restarted follower resumes from an
                // interval-aligned log watermark.
                if self.journal.is_enabled() {
                    self.journal.record(journal::Checkpoint {
                        server: self.server.clone(),
                        seq: self.seq,
                        log_idx: entry.idx,
                        history: self.history.clone(),
                    });
                }
            }
        }
        true
    }

    /// A primary heartbeat. Followers refresh liveness, cancel any
    /// election, and ack their watermark (which is also what bootstraps
    /// catch-up resends after a promotion). A *primary* receiving one has
    /// found a peer primary — split brain — and the higher epoch (lower
    /// replica on ties) wins; the loser steps down dead.
    fn on_repl_heartbeat(
        &mut self,
        ctx: &mut impl Outputs,
        from: NodeId,
        epoch: u64,
        idx: u64,
        replica: usize,
        floor: u64,
    ) {
        if self.repl.role == ReplRole::Primary {
            if epoch > self.epoch || (epoch == self.epoch && replica < self.repl.replica) {
                self.step_down(epoch);
            }
            return;
        }
        // A heartbeat from a newer primary while we hold ops past its
        // head: our (ex-primary) history diverged from the group's —
        // freeze rather than ack a watermark we cannot honor.
        if epoch > self.epoch && self.repl.applied_idx > idx {
            self.repl.active = false;
            return;
        }
        self.repl.last_primary_at = ctx.now();
        self.epoch = self.epoch.max(epoch);
        self.repl.primary_idx_seen = self.repl.primary_idx_seen.max(idx);
        self.repl.election = None;
        // The primary pruned past our watermark: the entries we need are
        // gone for good — diverged.
        if floor > self.repl.applied_idx + 1 && idx > self.repl.applied_idx {
            self.repl.active = false;
            return;
        }
        ctx.send(
            from,
            RtMsg::ReplAck {
                replica: self.repl.replica,
                idx: self.repl.applied_idx,
            },
        );
    }

    /// Primary loses a split-brain resolution: adopt the winner's epoch
    /// and freeze. Its unreplicated ops may contradict the winner's log,
    /// so only a `Restart` rollback to a checkpoint may revive it (as a
    /// follower).
    fn step_down(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
        self.repl.role = ReplRole::Follower;
        self.repl.gen += 1;
        self.tick_gen += 1;
        self.repl.active = false;
    }

    // ---- replication: elections ----------------------------------------

    /// A peer's election candidacy: a live primary vetoes it with a
    /// heartbeat; a follower joins the election (if the primary looks
    /// dead from here too) and folds the peer's watermark into its tally.
    fn on_candidacy(
        &mut self,
        ctx: &mut impl Outputs,
        from: NodeId,
        epoch: u64,
        idx: u64,
        replica: usize,
    ) {
        self.epoch = self.epoch.max(epoch);
        if self.repl.role == ReplRole::Primary {
            ctx.send(
                from,
                RtMsg::ReplHeartbeat {
                    epoch: self.epoch,
                    idx: self.repl.next_idx - 1,
                    replica: self.repl.replica,
                    floor: self.repl.floor(),
                },
            );
            return;
        }
        if self.repl.election.is_none() {
            // A fresh heartbeat vetoes the peer's suspicion from here.
            if ctx.now().saturating_sub(self.repl.last_primary_at)
                <= self.shared.knobs().repl_check_period()
            {
                return;
            }
            self.start_election(ctx);
        }
        let election = self.repl.election.as_mut().expect("election in progress");
        if idx > election.best_idx || (idx == election.best_idx && replica < election.best_replica)
        {
            election.best_idx = idx;
            election.best_replica = replica;
        }
    }

    /// Follower liveness check: a silent primary starts an election,
    /// otherwise the check re-arms itself.
    fn repl_check(&mut self, ctx: &mut impl Outputs) {
        if self.shared.is_shutdown() {
            return;
        }
        let silent = ctx.now().saturating_sub(self.repl.last_primary_at)
            > self.shared.knobs().primary_silence();
        if silent && self.repl.election.is_none() {
            self.start_election(ctx);
            return;
        }
        ctx.timer(
            self.shared.knobs().repl_check_period(),
            RtMsg::ReplCheck { gen: self.repl.gen },
        );
    }

    /// Primary declared dead: announce our replay watermark, collect
    /// peers' candidacies for a NACK-grace window, then resolve. Bumping
    /// `gen` here kills the pending liveness-check chain; resolution
    /// re-arms it under the new gen.
    fn start_election(&mut self, ctx: &mut impl Outputs) {
        self.stats.elections += 1;
        self.repl.gen += 1;
        self.shared
            .span("election", ctx.now(), ctx.now(), self.epoch);
        self.repl.election = Some(ElectionState {
            best_idx: self.repl.applied_idx,
            best_replica: self.repl.replica,
        });
        for r in 0..self.shared.knobs().replicas {
            if r == self.repl.replica {
                continue;
            }
            ctx.send(
                NodeId(r),
                RtMsg::Candidacy {
                    epoch: self.epoch,
                    idx: self.repl.applied_idx,
                    replica: self.repl.replica,
                },
            );
        }
        ctx.timer(
            self.shared.knobs().nack_grace,
            RtMsg::ElectionTick { gen: self.repl.gen },
        );
    }

    /// Election grace expired: the best watermark seen wins, lowest
    /// replica index breaking ties — every voter that saw the same
    /// candidacies computes the same winner.
    fn election_tick(&mut self, ctx: &mut impl Outputs) {
        let Some(election) = self.repl.election.take() else {
            // A heartbeat cancelled the election mid-grace.
            ctx.timer(
                self.shared.knobs().repl_check_period(),
                RtMsg::ReplCheck { gen: self.repl.gen },
            );
            return;
        };
        if election.best_replica == self.repl.replica {
            self.promote(ctx);
            return;
        }
        // A peer won: give it a fresh silence budget to announce itself.
        self.repl.last_primary_at = ctx.now();
        ctx.timer(
            self.shared.knobs().repl_check_period(),
            RtMsg::ReplCheck { gen: self.repl.gen },
        );
    }

    /// This replica won the election: become primary, bump the epoch, and
    /// re-announce with an immediate interval — the same epoch-bumped
    /// resync path members already traverse for single-replica restarts.
    /// The gap between the dead primary's advertised head and our replay
    /// watermark is recorded as lost mutations; the affected members
    /// re-request via `NotMember` rejoins and leave retransmissions.
    fn promote(&mut self, ctx: &mut impl Outputs) {
        self.stats.promotions += 1;
        self.stats.lost_mutations += self
            .repl
            .primary_idx_seen
            .saturating_sub(self.repl.applied_idx);
        self.epoch += 1;
        self.shared
            .span("promotion", ctx.now(), ctx.now(), self.epoch);
        self.repl.role = ReplRole::Primary;
        self.repl.gen += 1;
        self.tick_gen += 1;
        self.repl.entry_buf.clear();
        self.repl.election = None;
        self.pending_leave_acks.clear();
        // The follower's log holds exactly its applied prefix, so the new
        // log head is the replay watermark. Peer watermarks start unknown
        // and are re-learned from their heartbeat acks.
        self.repl.next_idx = self.repl.applied_idx + 1;
        let replicas = self.shared.knobs().replicas;
        self.repl.acked = vec![u64::MAX; replicas.max(1)];
        self.repl.acked[self.repl.replica] = self.repl.applied_idx;
        // No split-index reset: replay was contiguous to this point —
        // unlike a restart there is no rollback to discard.
        self.end_interval(ctx);
        ctx.timer(
            self.shared.knobs().repl_period(),
            RtMsg::ReplTick { gen: self.repl.gen },
        );
    }
}

/// Member-side counters of one runtime session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemberStats {
    /// `Forward` copies received.
    pub copies_received: u64,
    /// `Forward` copies sent onward.
    pub copies_forwarded: u64,
    /// Sum of copy payload sizes received (encryptions per split copy).
    pub payload_encryptions: u64,
    /// NACKs sent.
    pub nacks_sent: u64,
    /// Encryptions obtained via unicast recovery.
    pub recovered_encryptions: u64,
    /// Heartbeat pings sent.
    pub pings_sent: u64,
    /// Neighbors evicted after unanswered pings.
    pub evictions: u64,
    /// Control retransmissions (join/leave/NACK/resync retries).
    pub retransmissions: u64,
    /// Highest attempt count any retry entry reached (≤ the configured
    /// cap by construction).
    pub max_retry_attempts: u32,
    /// Full snapshots applied (`Resync` messages accepted).
    pub resyncs: u64,
    /// Times this node rejoined after the server disowned it.
    pub rejoins: u64,
    /// Evicted neighbors reinstated after answering a probation probe.
    pub rehabilitations: u64,
    /// Rekey intervals applied to the key agent.
    pub intervals_applied: u64,
    /// Summed µs from each interval's multicast to its local application
    /// (recovery latency numerator; divide by `intervals_applied`).
    pub apply_delay_total: u64,
}

/// A buffered rekey payload for one interval, applied strictly in order.
pub(crate) enum PendingPayload {
    /// A multicast copy (the member's related set is a subset, Lemma 3).
    Mesh(Arc<IntervalMessage>),
    /// A unicast recovery reply (already exactly the related set).
    Unicast {
        encryptions: Vec<Encryption>,
        sent_at: SimTime,
    },
}

/// A buffered membership mutation, applied strictly in `seq` order.
pub(crate) enum SeqUpdate {
    Insert {
        record: Member,
        rtt: Micros,
    },
    Remove {
        departed: UserId,
        replacements: Vec<(Member, Micros)>,
    },
}

/// What a retry entry is waiting for. Each kind exists at most once per
/// member (`Nack` once per interval), so the retry map stays tiny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Retrying {
    /// `JoinRequest` unacknowledged (no `JoinAccepted` yet).
    Join,
    /// `LeaveRequest` unacknowledged (no `LeaveAck` yet).
    Leave,
    /// A full snapshot is needed (sequence gap, epoch bump, NACK cap
    /// exhausted, or a `Welcome` that never arrived).
    Resync,
    /// An interval missing past its deadline.
    Nack(u64),
}

/// One retry entry: how often it fired and when it next fires.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryState {
    pub(crate) attempts: u32,
    pub(crate) due: SimTime,
}

pub(crate) struct RtMember<S: SharedHandle> {
    pub(crate) shared: S,
    pub(crate) member: Option<Member>,
    pub(crate) table: Option<NeighborTable>,
    pub(crate) agent: Option<UserAgent>,
    /// Last server epoch observed; any bump forces a resync.
    pub(crate) epoch: u64,
    /// Highest membership mutation applied in `epoch`.
    pub(crate) applied_seq: u64,
    /// Highest mutation watermark seen on an interval multicast; running
    /// ahead of `applied_seq` with an empty `update_buf` means the tail
    /// of the mutation stream was lost with nothing after it to expose
    /// the gap — real sockets hit this when a kernel buffer overflows.
    pub(crate) seq_hint: u64,
    /// Out-of-order membership mutations, keyed by `seq`.
    pub(crate) update_buf: BTreeMap<u64, SeqUpdate>,
    /// Set when an epoch bump invalidated `applied_seq`; only a snapshot
    /// clears it (sequenced updates alone cannot prove freshness).
    pub(crate) sync_stale: bool,
    /// This node asked to join and was not yet accepted.
    pub(crate) join_requested: bool,
    /// This node asked to leave and was not yet acknowledged.
    pub(crate) leave_pending: bool,
    pub(crate) departed: bool,
    /// Out-of-order rekey payloads, drained from `agent.interval + 1`.
    pub(crate) pending: BTreeMap<u64, PendingPayload>,
    /// Highest interval the server provably completed (from `Forward`,
    /// `Welcome`, `Recover`, `Resync`, `ServerPong`): the member never
    /// NACKs beyond its evidence, so it stays quiet through a server
    /// outage instead of flooding a dead server.
    pub(crate) server_interval_seen: u64,
    /// Highest interval whose copy this member has already forwarded.
    pub(crate) last_forwarded: u64,
    /// Neighbors evicted locally but possibly still in stale in-flight
    /// state; forwarding routes around them.
    pub(crate) suspected: BTreeSet<UserId>,
    /// Evicted records on probation: probed each beat, reinstated on a
    /// Pong, dropped when the server's repair broadcast confirms the
    /// departure.
    pub(crate) suspect_records: BTreeMap<UserId, NeighborRecord>,
    /// Ids the server has departed; a probation Pong cannot resurrect
    /// them.
    pub(crate) departed_seen: BTreeSet<UserId>,
    /// Outstanding heartbeat pings: token → target.
    pub(crate) outstanding: BTreeMap<u64, UserId>,
    pub(crate) next_token: u64,
    /// Stale-chain guard for `HeartbeatTick`.
    pub(crate) heartbeat_gen: u64,
    pub(crate) heartbeat_running: bool,
    /// Stale-chain guard for `IntervalCheck`.
    pub(crate) check_gen: u64,
    /// Stale-chain guard for `RetryTick`.
    pub(crate) retry_gen: u64,
    /// Live retry entries, fired by `RetryTick` at their due times.
    pub(crate) retries: BTreeMap<Retrying, RetryState>,
    /// Largest multicast-to-arrival delay observed on `Forward` copies
    /// since the last `IntervalCheck` rotation (adaptive NACK pipeline
    /// estimate, numerator of the current window).
    pub(crate) delay_seen: SimTime,
    /// The previous rotation window's largest observed delay.
    pub(crate) delay_seen_prev: SimTime,
    /// When the next rekey interval is expected to end (from the last
    /// `Welcome`/`Resync`, advanced each `IntervalCheck` firing).
    pub(crate) next_boundary: SimTime,
    /// The interval that ends at `next_boundary`: once the boundary
    /// passes, this interval exists even if no evidence of it arrived.
    pub(crate) expected_interval: u64,
    /// Intervals already NACKed during shutdown (the drain sends
    /// immediately instead of arming timers; this dedups).
    pub(crate) shutdown_nacked: BTreeSet<u64>,
    /// Whether the one-shot shutdown resync was already sent.
    pub(crate) shutdown_resynced: bool,
    /// The server replica this member currently talks to. Starts at the
    /// initial primary (node 0) and follows the replies: any message from
    /// a replica node re-anchors it, and server silence (an unanswered
    /// `ServerPing`, or a control retry with no progress) rotates it
    /// round-robin through the replica block until a live primary
    /// answers.
    pub(crate) server_node: NodeId,
    /// Set when a `ServerPing` goes out, cleared by any server reply; if
    /// still set at the next heartbeat, the server is silent and the
    /// member rotates `server_node` before pinging again.
    pub(crate) server_ping_outstanding: bool,
    pub(crate) stats: MemberStats,
}

impl<S: SharedHandle> RtMember<S> {
    pub(crate) fn new(shared: S) -> RtMember<S> {
        RtMember {
            shared,
            member: None,
            table: None,
            agent: None,
            epoch: 0,
            applied_seq: 0,
            seq_hint: 0,
            update_buf: BTreeMap::new(),
            sync_stale: false,
            join_requested: false,
            leave_pending: false,
            departed: false,
            pending: BTreeMap::new(),
            server_interval_seen: 0,
            last_forwarded: 0,
            suspected: BTreeSet::new(),
            suspect_records: BTreeMap::new(),
            departed_seen: BTreeSet::new(),
            outstanding: BTreeMap::new(),
            next_token: 0,
            heartbeat_gen: 0,
            heartbeat_running: false,
            check_gen: 0,
            retry_gen: 0,
            retries: BTreeMap::new(),
            delay_seen: 0,
            delay_seen_prev: 0,
            next_boundary: 0,
            expected_interval: 0,
            shutdown_nacked: BTreeSet::new(),
            shutdown_resynced: false,
            server_node: SERVER,
            server_ping_outstanding: false,
            stats: MemberStats::default(),
        }
    }

    /// The node hosting `host`'s member, offset past the replica block.
    fn member_node(&self, host: HostId) -> NodeId {
        NodeId(host.0 + self.shared.knobs().replicas)
    }

    /// Rotates to the next server replica (round-robin). Called when the
    /// current one stays silent; a single-replica config never rotates.
    fn rotate_server(&mut self) {
        let replicas = self.shared.knobs().replicas;
        if replicas > 1 {
            self.server_node = NodeId((self.server_node.0 + 1) % replicas);
        }
    }

    /// Grace before NACKing a missing interval, adapted to the overlay
    /// pipeline this member actually observes: 1.5× the largest
    /// multicast-to-arrival delay of the last two check windows plus a
    /// small margin, clamped to `[100 ms, nack_grace]`. A member that has
    /// seen no copy yet (or none recently) falls back to the configured
    /// grace, so cold starts and outages stay conservative.
    fn adaptive_grace(&self) -> SimTime {
        let seen = self.delay_seen.max(self.delay_seen_prev);
        let grace = self.shared.knobs().nack_grace;
        if seen == 0 {
            return grace;
        }
        // The 100 ms floor only applies when the configured grace allows
        // it (real-socket configs run much tighter periods).
        (seen + seen / 2 + 50_000).clamp(grace.min(100_000), grace)
    }

    pub(crate) fn receive(&mut self, ctx: &mut impl Outputs, from: NodeId, msg: RtMsg) {
        // Any traffic from a replica node is server-originated (members
        // all live past the replica block, and timer self-deliveries have
        // `from == self`): adopt the sender as our server. After a
        // failover this re-anchors every member on the promoted primary
        // the moment its beacon interval (or any reply) arrives.
        if from.0 < self.shared.knobs().replicas {
            self.server_node = from;
            self.server_ping_outstanding = false;
        }
        if self.departed
            && !matches!(
                msg,
                RtMsg::LeaveAck | RtMsg::RetryTick { .. } | RtMsg::Restart
            )
        {
            return;
        }
        match msg {
            RtMsg::JoinRequest if self.member.is_none() && !self.join_requested => {
                self.join_requested = true;
                ctx.send(self.server_node, RtMsg::JoinRequest);
                self.arm(
                    ctx,
                    Retrying::Join,
                    ctx.now() + self.shared.knobs().retry_base,
                );
            }
            RtMsg::JoinAccepted {
                member,
                table,
                epoch,
                seq,
            } => {
                // Duplicate or jitter-reordered stale accept: ignore.
                if self.member.is_some() && epoch == self.epoch && seq <= self.applied_seq {
                    return;
                }
                self.epoch = self.epoch.max(epoch);
                self.member = Some(member);
                self.table = Some(*table);
                self.applied_seq = seq;
                self.update_buf.retain(|&s, _| s > seq);
                self.sync_stale = false;
                self.retries.remove(&Retrying::Join);
                // Welcome safety net: if the key material never arrives
                // (lost to an outage window), fetch a snapshot instead.
                self.arm(
                    ctx,
                    Retrying::Resync,
                    ctx.now()
                        + 2 * self.shared.knobs().rekey_period
                        + self.shared.knobs().nack_grace,
                );
                self.drain_updates(ctx);
                self.start_heartbeat(ctx);
            }
            RtMsg::Welcome {
                welcome,
                epoch,
                next_interval_at,
            } => {
                if epoch < self.epoch || self.member.is_none() {
                    return;
                }
                self.note_epoch(ctx, epoch);
                let interval = welcome.interval;
                self.agent = Some(UserAgent::from_welcome(welcome));
                self.server_interval_seen = self.server_interval_seen.max(interval);
                self.pending.retain(|&i, _| i > interval);
                if !self.sync_stale {
                    self.retries.remove(&Retrying::Resync);
                }
                self.drain_payloads(ctx);
                self.arm_check(ctx, next_interval_at);
            }
            RtMsg::NewMember {
                record,
                rtt,
                epoch,
                seq,
            } => {
                self.note_epoch(ctx, epoch);
                if epoch == self.epoch && self.member.is_some() {
                    self.on_sequenced(ctx, seq, SeqUpdate::Insert { record, rtt });
                }
            }
            RtMsg::MemberLeft {
                departed,
                replacements,
                epoch,
                seq,
            } => {
                self.note_epoch(ctx, epoch);
                if epoch == self.epoch && self.member.is_some() {
                    self.on_sequenced(
                        ctx,
                        seq,
                        SeqUpdate::Remove {
                            departed,
                            replacements,
                        },
                    );
                }
            }
            RtMsg::LeaveRequest if self.member.is_some() && !self.leave_pending => {
                self.leave_pending = true;
                self.departed = true;
                self.retire();
                ctx.send(self.server_node, RtMsg::LeaveRequest);
                // The ack rides the next checkpoint, so the first retry
                // only fires once a full rekey period has gone unanswered.
                self.arm(
                    ctx,
                    Retrying::Leave,
                    ctx.now() + self.shared.knobs().rekey_period + self.shared.knobs().retry_base,
                );
            }
            RtMsg::LeaveAck => {
                self.leave_pending = false;
                self.retries.remove(&Retrying::Leave);
            }
            RtMsg::Forward {
                level,
                prefix,
                message,
            } => {
                self.stats.copies_received += 1;
                self.delay_seen = self
                    .delay_seen
                    .max(ctx.now().saturating_sub(message.sent_at));
                let split_size = message.index.related_ranges(prefix.as_slice()).total() as u64;
                self.stats.payload_encryptions += split_size;
                self.shared.record_split_payload(split_size);
                self.note_epoch(ctx, message.epoch);
                self.server_interval_seen = self.server_interval_seen.max(message.interval);
                self.note_seq_watermark(ctx, message.seq);
                // Forward duty: once per interval, rows `level..D` of the
                // table (Fig. 2), routing around suspects (§2.3).
                if message.interval > self.last_forwarded {
                    if let Some(table) = &self.table {
                        self.last_forwarded = message.interval;
                        let suspected = &self.suspected;
                        let mut fanout = 0u64;
                        for hop in user_next_hops_with(table, level, &|id| !suspected.contains(id))
                        {
                            self.stats.copies_forwarded += 1;
                            fanout += 1;
                            ctx.send(
                                NodeId(hop.neighbor.member.host.0 + self.shared.knobs().replicas),
                                RtMsg::Forward {
                                    level: hop.forward_level,
                                    prefix: PrefixBuf::of_hop(&hop),
                                    message: Arc::clone(&message),
                                },
                            );
                        }
                        self.shared.record_forward_fanout(fanout);
                    }
                }
                // Key state: any copy addressed to us carries our full
                // related set (Lemma 3 / Corollary 1), so one per interval
                // suffices. Buffer pre-welcome copies; Welcome prunes.
                let needed = self
                    .agent
                    .as_ref()
                    .is_none_or(|a| message.interval > a.interval());
                if needed {
                    self.pending
                        .entry(message.interval)
                        .or_insert(PendingPayload::Mesh(message));
                    self.drain_payloads(ctx);
                }
                let grace = self.adaptive_grace();
                self.scan_missing(ctx, grace);
            }
            RtMsg::Recover {
                interval,
                encryptions,
                sent_at,
                seq,
            } => {
                self.server_interval_seen = self.server_interval_seen.max(interval);
                self.note_seq_watermark(ctx, seq);
                let needed = self.agent.as_ref().is_some_and(|a| interval > a.interval())
                    && !self.pending.contains_key(&interval);
                if needed {
                    self.stats.recovered_encryptions += encryptions.len() as u64;
                    self.pending.insert(
                        interval,
                        PendingPayload::Unicast {
                            encryptions,
                            sent_at,
                        },
                    );
                    self.drain_payloads(ctx);
                }
                let grace = self.adaptive_grace();
                self.scan_missing(ctx, grace);
            }
            RtMsg::IntervalCheck { gen } => {
                if gen != self.check_gen {
                    return;
                }
                self.scan_missing(ctx, 0);
                // This timer fires `adaptive_grace` past each expected
                // interval boundary. If the boundary passed without any
                // evidence of the interval (every copy to us and to our
                // upstream lost, or the server is down), probe for it
                // speculatively: a live server answers with the related
                // set, a dead one stays silent and the retry lineage
                // escalates into the existing resync machinery.
                if !self.shared.is_shutdown() {
                    if let (Some(agent), true) = (&self.agent, self.member.is_some()) {
                        let next = agent.interval() + 1;
                        if next > self.server_interval_seen
                            && next <= self.expected_interval
                            && !self.pending.contains_key(&next)
                            && !self.retries.contains_key(&Retrying::Nack(next))
                        {
                            self.arm(ctx, Retrying::Nack(next), ctx.now());
                        }
                    }
                }
                self.delay_seen_prev = self.delay_seen;
                self.delay_seen = 0;
                if !self.shared.is_shutdown() {
                    self.next_boundary += self.shared.knobs().rekey_period;
                    self.expected_interval += 1;
                    let deadline = self.next_boundary + self.adaptive_grace();
                    ctx.timer(
                        deadline.saturating_sub(ctx.now()).max(1),
                        RtMsg::IntervalCheck { gen },
                    );
                }
            }
            RtMsg::RetryTick { gen } => {
                if gen != self.retry_gen {
                    return;
                }
                self.fire_due_retries(ctx);
                self.schedule_retry_tick(ctx);
            }
            RtMsg::HeartbeatTick { gen } => self.heartbeat(ctx, gen),
            RtMsg::Ping { token } => {
                // Answered whenever the process is up (even before our own
                // JoinAccepted lands — an established member may learn of
                // us via NewMember and ping first on a faster path).
                // Departed and crashed nodes absorb pings, which is what
                // the detector keys on.
                ctx.send(from, RtMsg::Pong { token });
            }
            RtMsg::Pong { token } => {
                let Some(id) = self.outstanding.remove(&token) else {
                    return;
                };
                // Probation: an evicted suspect that answers is
                // reinstated — unless the server already departed it.
                if let Some(record) = self.suspect_records.remove(&id) {
                    if !self.departed_seen.contains(&id) {
                        if let Some(table) = &mut self.table {
                            self.suspected.remove(&id);
                            table.insert(record);
                            self.stats.rehabilitations += 1;
                        }
                    }
                }
            }
            RtMsg::ServerPong {
                epoch,
                seq,
                interval,
            } => {
                self.note_epoch(ctx, epoch);
                if epoch != self.epoch {
                    return;
                }
                self.server_interval_seen = self.server_interval_seen.max(interval);
                // A watermark ahead of us means a membership broadcast
                // never arrived (e.g. our own outage window).
                self.note_seq_watermark(ctx, seq);
                let grace = self.adaptive_grace();
                self.scan_missing(ctx, grace);
            }
            RtMsg::NotMember { id } if self.member.as_ref().is_some_and(|m| m.id == id) => {
                // Wrongfully departed (e.g. behind a healed partition):
                // start over from scratch.
                self.stats.rejoins += 1;
                self.reset_to_unjoined();
                self.join_requested = true;
                ctx.send(self.server_node, RtMsg::JoinRequest);
                self.arm(
                    ctx,
                    Retrying::Join,
                    ctx.now() + self.shared.knobs().retry_base,
                );
            }
            RtMsg::Resync {
                member,
                table,
                welcome,
                epoch,
                seq,
                next_interval_at,
            } => {
                if epoch < self.epoch || self.departed {
                    return;
                }
                self.stats.resyncs += 1;
                self.epoch = epoch;
                self.member = Some(member);
                self.table = Some(*table);
                self.applied_seq = seq;
                self.update_buf.retain(|&s, _| s > seq);
                self.sync_stale = false;
                let interval = welcome.interval;
                self.agent = Some(UserAgent::from_welcome(welcome));
                self.server_interval_seen = self.server_interval_seen.max(interval);
                self.pending.retain(|&i, _| i > interval);
                // The snapshot table is authoritative; local suspicion
                // state against it is stale.
                self.suspected.clear();
                self.suspect_records.clear();
                self.outstanding.clear();
                self.retries.remove(&Retrying::Resync);
                self.retries.remove(&Retrying::Join);
                self.retries
                    .retain(|k, _| !matches!(k, Retrying::Nack(i) if *i <= interval));
                self.drain_updates(ctx);
                self.drain_payloads(ctx);
                self.arm_check(ctx, next_interval_at);
                self.start_heartbeat(ctx);
            }
            RtMsg::Restart => {
                // Our outage window ended: every timer chain died with the
                // suppressed deliveries, and any pong that was in flight
                // is gone — forget outstanding probes so we do not evict
                // healthy neighbors for our own downtime.
                self.outstanding.clear();
                self.schedule_retry_tick(ctx);
                if self.leave_pending {
                    self.arm(ctx, Retrying::Leave, ctx.now());
                } else if self.member.is_some() {
                    self.arm(ctx, Retrying::Resync, ctx.now());
                    self.heartbeat_running = false;
                    self.start_heartbeat(ctx);
                } else if self.join_requested {
                    self.arm(ctx, Retrying::Join, ctx.now());
                }
            }
            _ => {}
        }
    }
}

impl<S: SharedHandle> RtMember<S> {
    /// Observes a server epoch: any bump invalidates our sequence state
    /// and forces a snapshot resync (a restarted server rolled back to
    /// its last checkpoint, so no incremental path is trustworthy).
    fn note_epoch(&mut self, ctx: &mut impl Outputs, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.update_buf.clear();
            // Watermarks are per-epoch: the forced snapshot below is the
            // sole freshness proof until `applied_seq` is reseeded.
            self.seq_hint = 0;
            self.sync_stale = true;
            if self.member.is_some() {
                self.arm(ctx, Retrying::Resync, ctx.now());
            }
        }
    }

    /// Buffers a membership mutation and applies every consecutive one.
    fn on_sequenced(&mut self, ctx: &mut impl Outputs, seq: u64, update: SeqUpdate) {
        if seq <= self.applied_seq {
            return;
        }
        self.update_buf.insert(seq, update);
        self.drain_updates(ctx);
    }

    /// An interval multicast carries the server's mutation watermark; a
    /// member behind it missed a membership broadcast. When the gap is
    /// in the *tail* of the stream, no later mutation will ever expose
    /// it through `update_buf`, so the watermark is the only detector.
    /// Give the in-flight broadcast the grace period, then fetch a
    /// snapshot (dissolves at fire time if the broadcast lands).
    fn note_seq_watermark(&mut self, ctx: &mut impl Outputs, seq: u64) {
        if self.member.is_none() || seq <= self.applied_seq {
            return;
        }
        self.seq_hint = self.seq_hint.max(seq);
        self.arm(
            ctx,
            Retrying::Resync,
            ctx.now() + self.shared.knobs().nack_grace,
        );
    }

    fn drain_updates(&mut self, ctx: &mut impl Outputs) {
        while let Some(update) = self.update_buf.remove(&(self.applied_seq + 1)) {
            self.applied_seq += 1;
            self.apply_update(update);
        }
        if !self.update_buf.is_empty() {
            // A gap: give the in-flight broadcast the grace period, then
            // fetch a snapshot. (If it lands in time, the armed resync
            // dissolves at fire time — see `fire_retry`.)
            self.arm(
                ctx,
                Retrying::Resync,
                ctx.now() + self.shared.knobs().nack_grace,
            );
        }
    }

    fn apply_update(&mut self, update: SeqUpdate) {
        match update {
            SeqUpdate::Insert { record, rtt } => {
                self.suspected.remove(&record.id);
                self.suspect_records.remove(&record.id);
                self.departed_seen.remove(&record.id);
                let own = self.member.as_ref().map(|m| &m.id);
                if let Some(table) = &mut self.table {
                    if own != Some(&record.id) {
                        table.insert(NeighborRecord {
                            member: record,
                            rtt,
                        });
                    }
                }
            }
            SeqUpdate::Remove {
                departed,
                replacements,
            } => {
                self.suspected.remove(&departed);
                self.suspect_records.remove(&departed);
                self.departed_seen.insert(departed.clone());
                self.outstanding.retain(|_, id| *id != departed);
                let own = self.member.as_ref().map(|m| m.id.clone());
                if let Some(table) = &mut self.table {
                    table.remove(&departed);
                    for (m, rtt) in replacements {
                        if Some(&m.id) != own.as_ref()
                            && m.id != departed
                            && !self.suspected.contains(&m.id)
                        {
                            table.insert(NeighborRecord { member: m, rtt });
                        }
                    }
                }
            }
        }
    }

    /// Applies buffered rekey payloads strictly in interval order,
    /// starting at `agent.interval + 1`; prunes anything at or below the
    /// agent, plus any NACK retry the application satisfied.
    fn drain_payloads(&mut self, ctx: &mut impl Outputs) {
        let now = ctx.now();
        let (Some(agent), Some(member)) = (self.agent.as_mut(), self.member.as_ref()) else {
            return;
        };
        loop {
            while let Some((&first, _)) = self.pending.first_key_value() {
                if first <= agent.interval() {
                    self.pending.remove(&first);
                } else {
                    break;
                }
            }
            let next = agent.interval() + 1;
            let (sent_at, span) = match self.pending.remove(&next) {
                None => break,
                Some(PendingPayload::Mesh(message)) => {
                    let related: Vec<usize> = message.index.indices(member.id.digits()).collect();
                    agent.handle_rekey(next, related.iter().map(|&e| &message.encryptions[e]));
                    (message.sent_at, "apply")
                }
                Some(PendingPayload::Unicast {
                    encryptions,
                    sent_at,
                }) => {
                    agent.handle_rekey(next, encryptions.iter());
                    (sent_at, "recovery")
                }
            };
            self.stats.intervals_applied += 1;
            let delay = now.saturating_sub(sent_at);
            self.stats.apply_delay_total += delay;
            self.shared.record_apply(span, sent_at, now, next);
        }
        let applied = agent.interval();
        self.retries
            .retain(|k, _| !matches!(k, Retrying::Nack(i) if *i <= applied));
    }

    /// Arms a NACK for every interval the evidence says exists but we
    /// neither hold nor have buffered. During shutdown the NACK goes out
    /// immediately (timers no longer fire), deduplicated per interval.
    fn scan_missing(&mut self, ctx: &mut impl Outputs, grace: SimTime) {
        let Some(agent) = &self.agent else { return };
        let start = agent.interval() + 1;
        let end = self.server_interval_seen;
        if start > end {
            return;
        }
        let due = ctx.now() + grace;
        for i in start..=end {
            if self.pending.contains_key(&i) {
                continue;
            }
            if !self.shared.is_shutdown() && self.retries.contains_key(&Retrying::Nack(i)) {
                continue;
            }
            self.arm(ctx, Retrying::Nack(i), due);
        }
    }

    /// Registers a retry entry (first fire at `due`) and makes sure a
    /// retry timer is running. During shutdown the action fires inline
    /// instead — the event queue is draining and timers are dead.
    fn arm(&mut self, ctx: &mut impl Outputs, kind: Retrying, due: SimTime) {
        if self.shared.is_shutdown() {
            self.fire_shutdown(ctx, kind);
            return;
        }
        self.retries
            .entry(kind)
            .or_insert(RetryState { attempts: 0, due });
        self.schedule_retry_tick(ctx);
    }

    /// The shutdown form of a retry: send once, immediately, deduplicated.
    fn fire_shutdown(&mut self, ctx: &mut impl Outputs, kind: Retrying) {
        match kind {
            Retrying::Nack(i) => {
                if self.shutdown_nacked.insert(i) {
                    self.stats.nacks_sent += 1;
                    ctx.send(self.server_node, RtMsg::Nack { interval: i });
                }
            }
            Retrying::Resync => {
                if !self.shutdown_resynced {
                    if let Some(member) = &self.member {
                        self.shutdown_resynced = true;
                        let id = member.id.clone();
                        ctx.send(self.server_node, RtMsg::ResyncRequest { id });
                    }
                }
            }
            Retrying::Join => ctx.send(self.server_node, RtMsg::JoinRequest),
            Retrying::Leave => ctx.send(self.server_node, RtMsg::LeaveRequest),
        }
    }

    /// (Re)schedules the single retry timer at the earliest due time.
    fn schedule_retry_tick(&mut self, ctx: &mut impl Outputs) {
        if self.shared.is_shutdown() {
            return;
        }
        let Some(min_due) = self.retries.values().map(|st| st.due).min() else {
            return;
        };
        self.retry_gen += 1;
        ctx.timer(
            min_due.saturating_sub(ctx.now()).max(1),
            RtMsg::RetryTick {
                gen: self.retry_gen,
            },
        );
    }

    fn fire_due_retries(&mut self, ctx: &mut impl Outputs) {
        let now = ctx.now();
        let due: Vec<Retrying> = self
            .retries
            .iter()
            .filter(|(_, st)| st.due <= now)
            .map(|(k, _)| *k)
            .collect();
        for kind in due {
            self.fire_retry(ctx, kind);
        }
    }

    fn fire_retry(&mut self, ctx: &mut impl Outputs, kind: Retrying) {
        let now = ctx.now();
        // Entries whose goal was met since arming dissolve silently.
        let satisfied = match kind {
            Retrying::Join => self.member.is_some(),
            Retrying::Leave => !self.leave_pending,
            Retrying::Resync => {
                self.member.is_none()
                    || (!self.sync_stale
                        && self.update_buf.is_empty()
                        && self.seq_hint <= self.applied_seq
                        && self
                            .agent
                            .as_ref()
                            .is_some_and(|a| a.interval() >= self.server_interval_seen))
            }
            Retrying::Nack(i) => {
                self.pending.contains_key(&i)
                    || self.agent.as_ref().is_none_or(|a| a.interval() >= i)
            }
        };
        if satisfied {
            self.retries.remove(&kind);
            return;
        }
        let Some(&st) = self.retries.get(&kind) else {
            return;
        };
        // A NACK that exhausted its attempts escalates to a snapshot:
        // the server-assisted resync replaces the whole retry lineage.
        if matches!(kind, Retrying::Nack(_)) && st.attempts >= self.shared.knobs().retry_cap {
            self.retries.remove(&kind);
            self.arm(ctx, Retrying::Resync, now);
            return;
        }
        let attempts = (st.attempts + 1).min(self.shared.knobs().retry_cap);
        let due = now + self.shared.knobs().backoff(attempts);
        self.retries.insert(kind, RetryState { attempts, due });
        self.stats.max_retry_attempts = self.stats.max_retry_attempts.max(attempts);
        if st.attempts > 0 || matches!(kind, Retrying::Join | Retrying::Leave) {
            // Join/leave send inline when first requested, so every fire
            // of those re-transmits; a NACK's or resync's first fire is
            // its scheduled first send, not a retransmission.
            self.stats.retransmissions += 1;
            // The server we were talking to did not answer the previous
            // attempt: aim the retransmission at the next replica. A live
            // primary re-anchors `server_node` with its reply.
            self.rotate_server();
        }
        match kind {
            Retrying::Join => ctx.send(self.server_node, RtMsg::JoinRequest),
            Retrying::Leave => ctx.send(self.server_node, RtMsg::LeaveRequest),
            Retrying::Resync => {
                let id = self.member.as_ref().expect("checked above").id.clone();
                ctx.send(self.server_node, RtMsg::ResyncRequest { id });
            }
            Retrying::Nack(i) => {
                self.stats.nacks_sent += 1;
                ctx.send(self.server_node, RtMsg::Nack { interval: i });
            }
        }
    }

    fn start_heartbeat(&mut self, ctx: &mut impl Outputs) {
        if self.heartbeat_running || self.shared.is_shutdown() {
            return;
        }
        self.heartbeat_running = true;
        self.heartbeat_gen += 1;
        // Stagger first beats across the membership so a join burst does
        // not synchronize every ping burst.
        let mut rng = node_rng(self.shared.knobs().seed, ctx.self_id());
        let jitter = rng.gen_range(1..=self.shared.knobs().heartbeat_period.max(1));
        ctx.timer(
            jitter,
            RtMsg::HeartbeatTick {
                gen: self.heartbeat_gen,
            },
        );
    }

    fn heartbeat(&mut self, ctx: &mut impl Outputs, gen: u64) {
        if gen != self.heartbeat_gen {
            return;
        }
        if self.table.is_none() {
            self.heartbeat_running = false;
            return;
        }
        // Evict neighbors whose previous ping went unanswered; they go on
        // probation and the server is notified (and re-notified every
        // beat until its repair broadcast lands).
        let timed_out: BTreeSet<UserId> = std::mem::take(&mut self.outstanding)
            .into_values()
            .collect();
        let mut evicted: Vec<NeighborRecord> = Vec::new();
        if let Some(table) = &mut self.table {
            if !timed_out.is_empty() {
                evicted = table
                    .iter_all()
                    .filter(|r| timed_out.contains(&r.member.id))
                    .cloned()
                    .collect();
                for _ in table.evict_where(|r| timed_out.contains(&r.member.id)) {}
            }
        }
        for record in evicted {
            self.stats.evictions += 1;
            self.suspected.insert(record.member.id.clone());
            self.suspect_records
                .insert(record.member.id.clone(), record);
        }
        for id in self.suspect_records.keys() {
            ctx.send(
                self.server_node,
                RtMsg::FailureNotice { failed: id.clone() },
            );
        }
        if self.shared.is_shutdown() {
            self.heartbeat_running = false;
            return;
        }
        // Ping every stored neighbor plus every probation suspect.
        let mut targets: Vec<(HostId, UserId)> = Vec::new();
        if let Some(table) = &self.table {
            for record in table.iter_all() {
                targets.push((record.member.host, record.member.id.clone()));
            }
        }
        for record in self.suspect_records.values() {
            targets.push((record.member.host, record.member.id.clone()));
        }
        for (host, id) in targets {
            let token = self.next_token;
            self.next_token += 1;
            self.outstanding.insert(token, id);
            self.stats.pings_sent += 1;
            ctx.send(self.member_node(host), RtMsg::Ping { token });
        }
        // Probe the server: its pong is our NACK evidence and our
        // membership certificate; a NotMember reply triggers a rejoin.
        // An unanswered probe from the previous beat means the replica we
        // were aimed at is silent — rotate before probing again.
        if self.server_ping_outstanding {
            self.rotate_server();
        }
        if let Some(member) = &self.member {
            let id = member.id.clone();
            self.server_ping_outstanding = true;
            ctx.send(self.server_node, RtMsg::ServerPing { id });
        }
        ctx.timer(
            self.shared.knobs().heartbeat_period,
            RtMsg::HeartbeatTick { gen },
        );
    }

    /// (Re)anchors the NACK check timer at `next_interval_at` plus the
    /// adaptive grace. Each firing then re-anchors at the next expected
    /// boundary, so the offset tracks the observed pipeline delay instead
    /// of staying at the configured worst case.
    fn arm_check(&mut self, ctx: &mut impl Outputs, next_interval_at: SimTime) {
        if self.shared.is_shutdown() {
            return;
        }
        self.check_gen += 1;
        self.next_boundary = next_interval_at;
        self.expected_interval = self
            .agent
            .as_ref()
            .map_or(self.server_interval_seen, |a| a.interval())
            + 1;
        let deadline = next_interval_at + self.adaptive_grace();
        ctx.timer(
            deadline.saturating_sub(ctx.now()).max(1),
            RtMsg::IntervalCheck {
                gen: self.check_gen,
            },
        );
    }

    /// Clears every trace of membership so the node can rejoin from
    /// scratch (after the server disowned it).
    fn reset_to_unjoined(&mut self) {
        self.member = None;
        self.table = None;
        self.agent = None;
        self.applied_seq = 0;
        self.update_buf.clear();
        self.sync_stale = false;
        self.join_requested = false;
        self.pending.clear();
        self.server_interval_seen = 0;
        self.last_forwarded = 0;
        self.suspected.clear();
        self.suspect_records.clear();
        self.departed_seen.clear();
        self.outstanding.clear();
        self.heartbeat_gen += 1;
        self.heartbeat_running = false;
        self.check_gen += 1;
        self.retries.clear();
        self.retry_gen += 1;
    }

    /// Drops the local protocol state on a voluntary leave (the leave
    /// retry entry itself is armed by the caller).
    fn retire(&mut self) {
        self.table = None;
        self.agent = None;
        self.pending.clear();
        self.update_buf.clear();
        self.suspected.clear();
        self.suspect_records.clear();
        self.outstanding.clear();
        self.heartbeat_gen += 1;
        self.heartbeat_running = false;
        self.check_gen += 1;
        self.retries.clear();
        self.retry_gen += 1;
    }
}
