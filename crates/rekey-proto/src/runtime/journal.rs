//! The key server's crash journal: one checkpoint per completed rekey
//! interval.
//!
//! The paper's key server is a single point of failure; a deployment would
//! journal its state so a respawned process resumes rekeying instead of
//! orphaning the group. This module models exactly that: at the end of
//! every interval — *after* the rekey multicast, so no member can ever be
//! ahead of the journal — the runtime records a [`Checkpoint`] holding the
//! complete [`GroupServer`] (membership, key tree, RNG position), the
//! membership-update sequence number, and the per-interval message history
//! that answers NACKs. A restart restores the latest checkpoint, bumps the
//! server *epoch*, and re-announces itself with an immediate interval;
//! members that applied membership updates the rollback discarded detect
//! the epoch change and resync.
//!
//! Membership mutations between the last checkpoint and a crash are lost
//! by design (as they would be with a real write-behind journal): the
//! affected members re-request — a joiner whose admission rolled back is
//! told `NotMember` and rejoins, a leaver is only acknowledged *after* the
//! checkpoint that contains its departure, so an unacknowledged leaver
//! keeps retransmitting and departs again.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::GroupServer;

use super::core::ReplOp;
use super::IntervalMessage;

/// Intervals of rekey history a checkpoint (and the live server) retains
/// for unicast NACK recovery. A member that falls further behind than
/// this window has already escalated past the NACK retry cap to a full
/// resync, so older `Arc<IntervalMessage>`s are dead weight — pruning to
/// the window bounds checkpoint memory regardless of session length.
pub const HISTORY_WINDOW: usize = 64;

/// One replicated mutation of the key server's state: the unit the
/// primary streams to follower replicas (`RtMsg::ReplEntry`) and the
/// unit a follower replays against its own [`GroupServer`]. Replication
/// is deterministic state-machine replication — followers re-execute the
/// op, they do not receive state — so an entry carries the *inputs* of
/// the mutation, never its outputs.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Position in the primary's op log (first entry is 1). Acks and
    /// elections compare these watermarks.
    pub idx: u64,
    /// Server epoch the op was appended under.
    pub epoch: u64,
    /// The mutation itself.
    pub op: ReplOp,
}

/// One interval's durable server state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The complete server state machine at the interval boundary.
    pub server: GroupServer,
    /// The membership-update sequence number at checkpoint time; a
    /// restarted server resumes numbering from here, and members whose
    /// applied sequence exceeds it hold rolled-back state.
    pub seq: u64,
    /// The replication-log watermark covered by this checkpoint; a
    /// restarted replica resumes acknowledging from here.
    pub log_idx: u64,
    /// The per-interval rekey messages kept for unicast NACK recovery.
    /// Shared by reference with the live history, so a checkpoint costs no
    /// payload copies. Bounded to [`HISTORY_WINDOW`] intervals at
    /// [`Journal::record`] time.
    pub history: BTreeMap<u64, Arc<IntervalMessage>>,
}

/// The journal itself: the latest checkpoint plus a count of how many were
/// ever recorded (each new checkpoint supersedes the previous — recovery
/// only ever needs the most recent interval boundary).
#[derive(Debug, Default)]
pub struct Journal {
    latest: Option<Checkpoint>,
    recorded: u64,
    disabled: bool,
}

impl Journal {
    /// An empty journal (no checkpoint yet — a restart before the first
    /// interval keeps the live state).
    pub fn new() -> Journal {
        Journal::default()
    }

    /// A journal that records nothing. A checkpoint clones the complete
    /// server state — membership, every neighbor table, the key tree —
    /// which is O(N) memory and time per interval; runtimes that model no
    /// server crashes (the sharded million-member executor) opt out.
    pub fn disabled() -> Journal {
        Journal {
            latest: None,
            recorded: 0,
            disabled: true,
        }
    }

    /// `false` for [`Journal::disabled`] journals. Callers check this
    /// *before* building a [`Checkpoint`], so a disabled journal also
    /// skips the state clone, not just its storage.
    pub fn is_enabled(&self) -> bool {
        !self.disabled
    }

    /// Records `checkpoint`, superseding any previous one. A disabled
    /// journal drops it. The checkpoint's NACK history is pruned to the
    /// last [`HISTORY_WINDOW`] intervals so journal memory stays bounded
    /// no matter how long the session runs.
    pub fn record(&mut self, mut checkpoint: Checkpoint) {
        if self.disabled {
            return;
        }
        while checkpoint.history.len() > HISTORY_WINDOW {
            checkpoint.history.pop_first();
        }
        self.recorded += 1;
        self.latest = Some(checkpoint);
    }

    /// The most recent checkpoint, if any was recorded.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.latest.as_ref()
    }

    /// Checkpoints recorded over the journal's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Clones the latest checkpoint for a restart; the journal itself is
    /// untouched, so repeated restarts restore the same state.
    pub fn restore(&self) -> Option<Checkpoint> {
        self.latest.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_net::{HostId, MatrixNetwork, Network, PlanetLabParams};
    use rekey_sim::seeded_rng;

    fn server_with_members(n: usize) -> (MatrixNetwork, GroupServer) {
        let mut rng = seeded_rng(0x10AD);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let mut server = crate::GroupConfig::for_spec(&rekey_id::IdSpec::new(3, 8).unwrap())
            .k(2)
            .seed(3)
            .build(HostId(net.host_count() - 1));
        for h in 0..n {
            server.request_join(HostId(h), &net, h as u64).unwrap();
        }
        server.end_interval();
        (net, server)
    }

    #[test]
    fn empty_journal_restores_nothing() {
        let journal = Journal::new();
        assert!(journal.latest().is_none());
        assert!(journal.restore().is_none());
        assert_eq!(journal.recorded(), 0);
    }

    #[test]
    fn restore_is_an_independent_snapshot() {
        let (net, server) = server_with_members(5);
        let mut journal = Journal::new();
        journal.record(Checkpoint {
            server: server.clone(),
            seq: 5,
            log_idx: 5,
            history: BTreeMap::new(),
        });
        assert_eq!(journal.recorded(), 1);

        // Mutate a restored copy: the journal's checkpoint is unaffected,
        // so a second restart sees the same state again.
        let mut restored = journal.restore().unwrap();
        assert_eq!(restored.seq, 5);
        assert_eq!(restored.server.interval(), server.interval());
        let victim = restored.server.group().members()[0].id.clone();
        restored.server.request_leave(&victim, &net).unwrap();
        restored.server.end_interval();
        assert_eq!(journal.latest().unwrap().server.group().len(), 5);
        assert_eq!(
            journal.latest().unwrap().server.interval(),
            server.interval()
        );
    }

    #[test]
    fn newer_checkpoints_supersede_older_ones() {
        let (_, server) = server_with_members(4);
        let mut journal = Journal::new();
        journal.record(Checkpoint {
            server: server.clone(),
            seq: 4,
            log_idx: 4,
            history: BTreeMap::new(),
        });
        journal.record(Checkpoint {
            server,
            seq: 9,
            log_idx: 9,
            history: BTreeMap::new(),
        });
        assert_eq!(journal.recorded(), 2);
        assert_eq!(journal.latest().unwrap().seq, 9);
    }

    /// The restored key tree reproduces the same group key: a member that
    /// was current at the checkpoint stays current across a restart.
    #[test]
    fn restored_tree_preserves_the_group_key() {
        let (_, server) = server_with_members(6);
        let key = server.tree().group_key().cloned();
        let mut journal = Journal::new();
        journal.record(Checkpoint {
            server,
            seq: 6,
            log_idx: 6,
            history: BTreeMap::new(),
        });
        let restored = journal.restore().unwrap();
        assert_eq!(restored.server.tree().group_key().cloned(), key);
    }

    /// `record` prunes the NACK history to [`HISTORY_WINDOW`] intervals:
    /// a checkpoint stuffed with an unbounded history comes back bounded,
    /// keeping the *newest* window.
    #[test]
    fn record_bounds_the_checkpoint_history() {
        let (_, server) = server_with_members(3);
        let mut history = BTreeMap::new();
        for interval in 1..=(HISTORY_WINDOW as u64 * 3) {
            history.insert(
                interval,
                Arc::new(IntervalMessage {
                    interval,
                    epoch: 0,
                    sent_at: interval * 1_000,
                    seq: interval,
                    encryptions: Vec::new(),
                    index: crate::SplitIndex::build(&[]),
                }),
            );
        }
        let mut journal = Journal::new();
        journal.record(Checkpoint {
            server,
            seq: 1,
            log_idx: 1,
            history,
        });
        let kept = &journal.latest().unwrap().history;
        assert_eq!(kept.len(), HISTORY_WINDOW);
        assert_eq!(
            *kept.keys().next().unwrap(),
            HISTORY_WINDOW as u64 * 2 + 1,
            "the oldest intervals are the ones pruned"
        );
        assert_eq!(*kept.keys().last().unwrap(), HISTORY_WINDOW as u64 * 3);
    }

    /// Back-to-back restores from the same checkpoint are byte-for-byte
    /// the same state: a double failure (restore, crash again before the
    /// next checkpoint) replays from the identical snapshot, group key
    /// included.
    #[test]
    fn repeated_restores_replay_the_same_checkpoint() {
        let (net, server) = server_with_members(6);
        let key = server.tree().group_key().cloned();
        let mut journal = Journal::new();
        journal.record(Checkpoint {
            server,
            seq: 6,
            log_idx: 6,
            history: BTreeMap::new(),
        });

        // First restore: mutate it past the checkpoint (the mutations a
        // second crash would lose), then restore again.
        let mut first = journal.restore().unwrap();
        let victim = first.server.group().members()[0].id.clone();
        first.server.request_leave(&victim, &net).unwrap();
        first.server.end_interval();

        let second = journal.restore().unwrap();
        assert_eq!(second.seq, 6);
        assert_eq!(second.log_idx, 6);
        assert_eq!(second.server.group().len(), 6);
        assert_eq!(second.server.tree().group_key().cloned(), key);
        assert_eq!(
            second.server.interval(),
            journal.latest().unwrap().server.interval()
        );
    }
}
