//! The sharded event executor: the million-member runtime.
//!
//! [`super::GroupRuntime`] drives every node through one global event
//! queue — perfect for protocol fidelity, hopeless for a 10⁶-member
//! sweep where a single rekey interval produces millions of `Forward`
//! deliveries. This module keeps the *exact same* protocol state machines
//! (`RtServer`, `RtMember`) and replaces only the executor: members
//! are partitioned into shards by their level-1 ID digit, each shard owns
//! a private [`Scheduler`], and shards drain **windows** of simulated
//! time on scoped worker threads.
//!
//! # The window invariant
//!
//! Per window the executor picks `t0` = the earliest pending event
//! anywhere and drains every event in `[t0, t0 + W)`, where the window
//! `W` must satisfy
//!
//! > `W ≤ min one-way delay between any two distinct hosts`.
//!
//! Every member→member and member→server message crosses distinct hosts,
//! so anything *sent* inside the window *arrives* at or after its end —
//! cross-shard traffic can therefore be exchanged once per window, at a
//! barrier, instead of per event. Within a window only a node's own
//! timers (`send_after`, always self-directed in this protocol) can land,
//! and those stay inside the node's own shard by construction. A
//! `debug_assert` on every cross-shard send enforces the invariant
//! dynamically, so an undersized delay model fails loudly in debug runs.
//!
//! # Determinism
//!
//! Identically seeded runs produce byte-identical [`MetricsSnapshot`]
//! JSON even though shards run on real threads:
//!
//! * each shard owns a private loss RNG (domain-separated from the
//!   coordinator's), and loss is drawn at **send** time in the sender's
//!   shard — never at a receive whose thread timing could vary;
//! * shard metrics are [`LocalHistogram`]s behind one mutex; histogram
//!   inserts commute, so lock-acquisition order cannot change the merge;
//! * per window the order is fixed: the coordinator drains the server,
//!   then workers drain their shards (disjoint `&mut`), then outboxes
//!   merge into destination schedulers in shard-index order.
//!
//! # What the sharded runtime does *not* model
//!
//! * **Heartbeats** are disarmed (members still *answer* `Ping`s): at
//!   10⁶ members the paper's per-neighbor probing is pure O(N·K·D)
//!   noise for a churn sweep, and failure detection is exercised by the
//!   classic runtime's tests.
//! * **Server crashes**: the journal is [`journal::Journal::disabled`],
//!   because a checkpoint clones the complete server state — O(N) per
//!   interval. Leave acks still ride the (skipped) checkpoint boundary.
//! * **Joins after bootstrap**: the group is built by
//!   [`GroupConfig::bootstrap`]'s O(N·D·B) dealing pass; churn is
//!   leaves/failures, which is where batch rekeying earns its keep.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rekey_metrics::LocalHistogram;
use rekey_sim::{Outgoing, Scheduler, SimRng};

use crate::GroupError;

use super::*;

/// Domain separator of the per-shard loss RNG streams (same constant as
/// the classic runtime's loss stream; shards are further separated by
/// their index, the coordinator by [`SERVER`]).
const LOSS_SEED: u64 = 0x4C4F_5353; // "LOSS"

/// Shutdown-flush rounds before we declare the drain diverged.
const MAX_FLUSH_ROUNDS: u32 = 64;

/// State shared by every member across all shards: the knobs, the
/// shutdown flag, and the mutex-merged metric sinks. The `Send + Sync`
/// counterpart of the classic runtime's `Rc<Shared>`.
pub(crate) struct ShardCore {
    knobs: Knobs,
    shutdown: AtomicBool,
    metrics: Mutex<ShardMetrics>,
}

/// The member-side histogram sinks. All operations are commutative
/// (bucket increments), so recording under a shared mutex from many
/// worker threads is deterministic regardless of interleaving.
#[derive(Default)]
struct ShardMetrics {
    apply_delay_us: LocalHistogram,
    split_payload: LocalHistogram,
    forward_fanout: LocalHistogram,
    recovery_size: LocalHistogram,
}

impl ShardCore {
    /// Builds the shared member-side core. Also used by the real-socket
    /// driver ([`super::socket`]), whose worker threads need the same
    /// `Send + Sync` handle the shards use.
    pub(crate) fn new(knobs: Knobs) -> Arc<ShardCore> {
        Arc::new(ShardCore {
            knobs,
            shutdown: AtomicBool::new(false),
            metrics: Mutex::new(ShardMetrics::default()),
        })
    }

    /// Raises the shutdown flag: state machines stop re-arming timers.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Snapshots the four member-side histograms in declaration order
    /// (apply delay, split payload, forward fan-out, recovery size).
    pub(crate) fn member_histograms(&self) -> [rekey_metrics::HistogramSnapshot; 4] {
        let metrics = self.metrics.lock().unwrap();
        [
            metrics.apply_delay_us.snapshot(),
            metrics.split_payload.snapshot(),
            metrics.forward_fanout.snapshot(),
            metrics.recovery_size.snapshot(),
        ]
    }
}

impl SharedHandle for Arc<ShardCore> {
    fn knobs(&self) -> &Knobs {
        &self.knobs
    }
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
    fn record_split_payload(&self, v: u64) {
        self.metrics.lock().unwrap().split_payload.record(v);
    }
    fn record_forward_fanout(&self, v: u64) {
        self.metrics.lock().unwrap().forward_fanout.record(v);
    }
    fn record_apply(&self, _span: &'static str, sent_at: SimTime, now: SimTime, _interval: u64) {
        self.metrics
            .lock()
            .unwrap()
            .apply_delay_us
            .record(now.saturating_sub(sent_at));
    }
    fn record_recovery_size(&self, v: u64) {
        self.metrics.lock().unwrap().recovery_size.record(v);
    }
    fn span(&self, _name: &'static str, _start: SimTime, _end: SimTime, _detail: u64) {
        // Members record no spans in the sharded runtime: the span ring
        // lives in the coordinator's single-threaded registry.
    }
}

/// The server's handle: the same shared core (knobs, shutdown, member
/// histograms) plus the coordinator-only [`Registry`] for spans and the
/// key tree's counters. The server runs exclusively on the coordinator
/// thread, so the `Rc`-based registry never crosses a thread.
pub(crate) struct CoordHandle {
    core: Arc<ShardCore>,
    registry: Registry,
}

impl CoordHandle {
    /// Pairs the shared core with a coordinator-local span registry.
    /// Also the server handle of the real-socket driver.
    pub(crate) fn new(core: Arc<ShardCore>, registry: Registry) -> CoordHandle {
        CoordHandle { core, registry }
    }
}

impl SharedHandle for CoordHandle {
    fn knobs(&self) -> &Knobs {
        &self.core.knobs
    }
    fn is_shutdown(&self) -> bool {
        self.core.is_shutdown()
    }
    fn record_split_payload(&self, v: u64) {
        self.core.record_split_payload(v);
    }
    fn record_forward_fanout(&self, v: u64) {
        self.core.record_forward_fanout(v);
    }
    fn record_apply(&self, span: &'static str, sent_at: SimTime, now: SimTime, interval: u64) {
        self.core.record_apply(span, sent_at, now, interval);
        self.registry.span(span, sent_at, now, interval);
    }
    fn record_recovery_size(&self, v: u64) {
        self.core.record_recovery_size(v);
    }
    fn span(&self, name: &'static str, start: SimTime, end: SimTime, detail: u64) {
        self.registry.span(name, start, end, detail);
    }
}

/// One queued delivery inside a shard's scheduler.
struct Envelope {
    from: NodeId,
    to: NodeId,
    msg: RtMsg,
}

/// A message leaving its shard during a window; `at` is the (already
/// computed) arrival time, which the invariant guarantees lies at or
/// beyond the window's end.
struct Crossing {
    at: SimTime,
    from: NodeId,
    to: NodeId,
    msg: RtMsg,
}

/// One shard: a contiguous run of the executor owning a subset of the
/// members, their event queue, a private loss RNG, and delivery counters.
struct Shard {
    index: usize,
    members: Vec<RtMember<Arc<ShardCore>>>,
    sched: Scheduler<Envelope>,
    /// Loss draws for `Forward` copies sent *by this shard's members*.
    rng: SimRng,
    /// Cross-shard (and member→server) sends of the current window,
    /// merged by the coordinator after the workers join.
    outbox: Vec<Crossing>,
    delivered: u64,
    dropped: u64,
}

/// Drains every event of `shard` strictly before `t1`, routing in-shard
/// traffic and timers locally and pushing everything else onto the
/// shard's outbox. Runs on a worker thread; touches nothing but the
/// shard, the (read-only) network, and the placement table.
fn drain_shard<NET: Network + Sync>(
    shard: &mut Shard,
    net: &NET,
    placement: &[(u32, u32)],
    server_host: HostId,
    loss: f64,
    t1: SimTime,
) {
    let mut out: Vec<Outgoing<RtMsg>> = Vec::new();
    while shard.sched.next_time().is_some_and(|t| t < t1) {
        let (now, env) = shard.sched.pop().expect("peeked above");
        shard.delivered += 1;
        let (owner, idx) = placement[env.to.0 - 1];
        debug_assert_eq!(
            owner as usize, shard.index,
            "envelope routed to the wrong shard"
        );
        {
            let mut ctx = Ctx::external(now, env.to, &mut out);
            shard.members[idx as usize].receive(&mut ctx, env.from, env.msg);
        }
        for outgoing in out.drain(..) {
            match outgoing {
                Outgoing::Send { to, msg } => {
                    if loss > 0.0
                        && matches!(msg, RtMsg::Forward { .. })
                        && shard.rng.gen_bool(loss)
                    {
                        shard.dropped += 1;
                        continue;
                    }
                    let from_host = host_of_member_node(env.to);
                    let to_host = if to == SERVER {
                        server_host
                    } else {
                        host_of_member_node(to)
                    };
                    let at = now + net.one_way(from_host, to_host).max(1);
                    let local = to != SERVER && placement[to.0 - 1].0 as usize == shard.index;
                    if local {
                        shard.sched.schedule_at(
                            at,
                            Envelope {
                                from: env.to,
                                to,
                                msg,
                            },
                        );
                    } else {
                        debug_assert!(
                            at >= t1,
                            "cross-shard send inside the window: the window exceeds \
                             the minimum one-way delay"
                        );
                        shard.outbox.push(Crossing {
                            at,
                            from: env.to,
                            to,
                            msg,
                        });
                    }
                }
                Outgoing::After { to, delay, msg } => {
                    debug_assert_eq!(to, env.to, "runtime timers are self-directed");
                    shard.sched.schedule_at(
                        now + delay.max(1),
                        Envelope {
                            from: env.to,
                            to,
                            msg,
                        },
                    );
                }
            }
        }
    }
}

/// The sharded runtime: the classic protocol state machines under a
/// windowed multi-queue executor. Built fully populated via
/// [`ShardedGroupRuntime::bootstrapped`]; drive it with
/// [`ShardedGroupRuntime::leave_at`] / [`ShardedGroupRuntime::fail_at`]
/// and [`ShardedGroupRuntime::finish`], then read
/// [`ShardedGroupRuntime::snapshot`].
pub struct ShardedGroupRuntime<NET: Network + Sync> {
    net: Rc<NET>,
    server: RtServer<NET, CoordHandle>,
    server_sched: Scheduler<Envelope>,
    /// Loss draws for `Forward` copies seeded by the server.
    server_rng: SimRng,
    core: Arc<ShardCore>,
    registry: Registry,
    shards: Vec<Shard>,
    /// Member handle → (shard index, index within the shard).
    placement: Vec<(u32, u32)>,
    window: Micros,
    loss: f64,
    server_host: HostId,
    now: SimTime,
    delivered_coord: u64,
    dropped_coord: u64,
    peak_queue: usize,
}

impl<NET: Network + Sync> ShardedGroupRuntime<NET> {
    /// Builds a fully populated runtime: `members` members on hosts
    /// `0..members` (the server takes the network's last host), dealt
    /// into IDs and K-consistent tables by [`GroupConfig::bootstrap`],
    /// every agent welcomed at interval 1, and the first rekey interval
    /// armed. `shards` is clamped to the ID base (members shard by their
    /// level-1 digit); `window` must respect the window invariant
    /// (`≤` the minimum one-way delay between distinct hosts — e.g.
    /// `GridNetwork::min_one_way`).
    pub fn bootstrapped(
        group: GroupConfig,
        config: RuntimeConfig,
        net: NET,
        members: usize,
        shards: usize,
        window: Micros,
    ) -> Result<ShardedGroupRuntime<NET>, GroupError> {
        assert!(window > 0, "the drain window must be positive");
        assert!(shards > 0, "need at least one shard");
        // The sharded engine models no server crashes (disabled journal)
        // and bakes the legacy node mapping into its shard routing.
        assert!(
            config.replicas() == 1,
            "the sharded runtime supports a single key-server replica"
        );
        assert!(
            members < net.host_count(),
            "need a host per member plus one for the server"
        );
        let net = Rc::new(net);
        let server_host = HostId(net.host_count() - 1);
        let hosts: Vec<HostId> = (0..members).map(HostId).collect();
        let (mut server_fsm, welcomes) = group.bootstrap(server_host, &hosts, &*net)?;

        let core = Arc::new(ShardCore {
            knobs: Knobs::of_config(&config),
            shutdown: AtomicBool::new(false),
            metrics: Mutex::new(ShardMetrics::default()),
        });
        let registry = Registry::new();
        server_fsm.instrument_tree(TreeMetrics::in_registry(&registry));
        let base = server_fsm.group().spec().base();
        let shard_count = shards.min(base as usize);

        let mut shard_list: Vec<Shard> = (0..shard_count)
            .map(|index| Shard {
                index,
                members: Vec::new(),
                sched: Scheduler::new(),
                // Shard streams are separated by index + 1 so none
                // collides with the coordinator's (node 0 = SERVER).
                rng: node_rng(config.seed ^ LOSS_SEED, NodeId(index + 1)),
                outbox: Vec::new(),
                delivered: 0,
                dropped: 0,
            })
            .collect();

        // Welcomes come back in member order (bootstrap deals IDs in
        // host order), so handle i pairs welcomes[i] with members()[i].
        let mut placement = Vec::with_capacity(members);
        let first_deadline = config.rekey_period + config.nack_grace;
        for (i, welcome) in welcomes.into_iter().enumerate() {
            let record = server_fsm.group().members()[i].clone();
            let table = server_fsm.group().table(i).clone();
            debug_assert_eq!(record.id, welcome.id);
            let shard_index = (record.id.digit(0) as usize) % shard_count;

            let mut member = RtMember::new(Arc::clone(&core));
            member.member = Some(record);
            member.table = Some(table);
            member.server_interval_seen = welcome.interval;
            member.agent = Some(UserAgent::from_welcome(welcome));
            // Mirror `arm_check` after a Welcome: expect interval 2 to
            // close at the first rekey boundary. Heartbeats stay
            // disarmed (see the module docs).
            member.check_gen = 1;
            member.next_boundary = config.rekey_period;
            member.expected_interval = 2;

            let node = node_of_host(HostId(i));
            let shard = &mut shard_list[shard_index];
            placement.push((shard_index as u32, shard.members.len() as u32));
            shard.sched.schedule_at(
                first_deadline,
                Envelope {
                    from: node,
                    to: node,
                    msg: RtMsg::IntervalCheck { gen: 1 },
                },
            );
            shard.members.push(member);
        }

        let server = RtServer {
            net: Rc::clone(&net),
            shared: CoordHandle {
                core: Arc::clone(&core),
                registry: registry.clone(),
            },
            server: server_fsm,
            epoch: 0,
            seq: 0,
            tick_gen: 0,
            next_interval_at: config.rekey_period,
            last_round_at: 0,
            history: BTreeMap::new(),
            split_index: SplitIndexMaintainer::default(),
            journal: journal::Journal::disabled(),
            pending_leave_acks: Vec::new(),
            repl: Replication::new(0, 1),
            stats: ServerStats {
                welcomes: members as u64,
                ..ServerStats::default()
            },
        };

        let mut server_sched = Scheduler::new();
        server_sched.schedule_at(
            config.rekey_period,
            Envelope {
                from: SERVER,
                to: SERVER,
                msg: RtMsg::IntervalTick { gen: 0 },
            },
        );

        Ok(ShardedGroupRuntime {
            server,
            server_sched,
            server_rng: node_rng(config.seed ^ LOSS_SEED, SERVER),
            core,
            registry,
            shards: shard_list,
            placement,
            window,
            loss: config.loss,
            server_host,
            now: 0,
            delivered_coord: 0,
            dropped_coord: 0,
            peak_queue: 0,
            net,
        })
    }

    /// Schedules member `handle`'s voluntary `LeaveRequest` at `at`.
    pub fn leave_at(&mut self, at: SimTime, handle: usize) {
        self.inject(at, handle, RtMsg::LeaveRequest);
    }

    /// Schedules a crash of member `handle` at `at`: a neighbor's
    /// `FailureNotice` reaches the server as if detection concluded, and
    /// the member itself goes silent (departs) when the repair broadcast
    /// arrives.
    pub fn fail_at(&mut self, at: SimTime, handle: usize, accuser: usize) {
        let failed = self.shards[self.placement[handle].0 as usize].members
            [self.placement[handle].1 as usize]
            .member
            .as_ref()
            .expect("bootstrapped members all hold a record")
            .id
            .clone();
        let accuser_node = node_of_host(HostId(accuser));
        let at = at.max(self.server_sched.now());
        self.server_sched.schedule_at(
            at,
            Envelope {
                from: accuser_node,
                to: SERVER,
                msg: RtMsg::FailureNotice { failed },
            },
        );
    }

    /// Schedules `msg` as a self-delivery at member `handle`.
    fn inject(&mut self, at: SimTime, handle: usize, msg: RtMsg) {
        let (shard_index, _) = self.placement[handle];
        let node = node_of_host(HostId(handle));
        let shard = &mut self.shards[shard_index as usize];
        let at = at.max(shard.sched.now());
        shard.sched.schedule_at(
            at,
            Envelope {
                from: node,
                to: node,
                msg,
            },
        );
    }

    /// Earliest pending event anywhere, or `None` when fully idle.
    fn min_next(&self) -> Option<SimTime> {
        let mut next = self.server_sched.next_time();
        for shard in &self.shards {
            next = match (next, shard.sched.next_time()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        next
    }

    /// Drains the server's events strictly before `t1` on the
    /// coordinator thread, scheduling its sends straight into the
    /// destination shards (safe before the workers start; the invariant
    /// puts every arrival at or beyond `t1`).
    fn drain_server(&mut self, t1: SimTime) {
        let mut out: Vec<Outgoing<RtMsg>> = Vec::new();
        while self.server_sched.next_time().is_some_and(|t| t < t1) {
            let (now, env) = self.server_sched.pop().expect("peeked above");
            self.delivered_coord += 1;
            {
                let mut ctx = Ctx::external(now, SERVER, &mut out);
                self.server.receive(&mut ctx, env.from, env.msg);
            }
            for outgoing in out.drain(..) {
                match outgoing {
                    Outgoing::Send { to, msg } => {
                        if self.loss > 0.0
                            && matches!(msg, RtMsg::Forward { .. })
                            && self.server_rng.gen_bool(self.loss)
                        {
                            self.dropped_coord += 1;
                            continue;
                        }
                        debug_assert_ne!(to, SERVER, "the server never unicasts itself");
                        let at = now
                            + self
                                .net
                                .one_way(self.server_host, host_of_member_node(to))
                                .max(1);
                        debug_assert!(at >= t1, "server send inside the window");
                        let (shard_index, _) = self.placement[to.0 - 1];
                        self.shards[shard_index as usize].sched.schedule_at(
                            at,
                            Envelope {
                                from: SERVER,
                                to,
                                msg,
                            },
                        );
                    }
                    Outgoing::After { to, delay, msg } => {
                        debug_assert_eq!(to, SERVER, "server timers are self-directed");
                        self.server_sched.schedule_at(
                            now + delay.max(1),
                            Envelope {
                                from: SERVER,
                                to,
                                msg,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Runs one window: pick `t0` (earliest event anywhere), drain
    /// everything in `[t0, min(t0 + W, cap))` — server first on the
    /// coordinator, then the due shards on scoped worker threads — and
    /// merge the outboxes in shard-index order. Returns `false` when no
    /// event remains before `cap`.
    fn step_window(&mut self, cap: Option<SimTime>) -> bool {
        let Some(t0) = self.min_next() else {
            return false;
        };
        if cap.is_some_and(|c| t0 >= c) {
            return false;
        }
        let mut t1 = t0.saturating_add(self.window);
        if let Some(c) = cap {
            t1 = t1.min(c);
        }

        let depth = self.server_sched.pending()
            + self.shards.iter().map(|s| s.sched.pending()).sum::<usize>();
        self.peak_queue = self.peak_queue.max(depth);

        self.drain_server(t1);

        let placement: &[(u32, u32)] = &self.placement;
        let net: &NET = &self.net;
        let loss = self.loss;
        let server_host = self.server_host;
        let mut due = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.sched.next_time().is_some_and(|t| t < t1))
            .map(|(i, _)| i);
        match (due.next(), due.next()) {
            (None, _) => {}
            (Some(only), None) => {
                // One busy shard: drain inline, skip the thread spawn.
                drain_shard(
                    &mut self.shards[only],
                    net,
                    placement,
                    server_host,
                    loss,
                    t1,
                );
            }
            (Some(_), Some(_)) => {
                std::thread::scope(|scope| {
                    for shard in self.shards.iter_mut() {
                        if shard.sched.next_time().is_some_and(|t| t < t1) {
                            scope.spawn(move || {
                                drain_shard(shard, net, placement, server_host, loss, t1);
                            });
                        }
                    }
                });
            }
        }

        // Merge outboxes in shard-index order: together with the
        // scheduler's FIFO tie-break this fixes the delivery order of
        // same-instant cross-shard messages independently of thread
        // timing.
        for index in 0..self.shards.len() {
            let crossings = std::mem::take(&mut self.shards[index].outbox);
            for crossing in crossings {
                let Crossing { at, from, to, msg } = crossing;
                if to == SERVER {
                    self.server_sched
                        .schedule_at(at, Envelope { from, to, msg });
                } else {
                    let (shard_index, _) = self.placement[to.0 - 1];
                    self.shards[shard_index as usize]
                        .sched
                        .schedule_at(at, Envelope { from, to, msg });
                }
            }
        }

        self.now = self.now.max(t1);
        true
    }

    /// Runs the simulation until `until`: every event strictly before
    /// `until` is processed.
    pub fn run_until(&mut self, until: SimTime) {
        while self.step_window(Some(until)) {}
        self.now = self.now.max(until);
    }

    /// Drains every pending event, windows included, until fully idle.
    fn drain(&mut self) {
        while self.step_window(None) {}
    }

    /// Runs to `until`, then shuts down: timers stop re-arming, the
    /// queues drain, and shutdown `Flush` rounds run until the server
    /// holds no pending membership work and no unacknowledged leaves
    /// (mirrors [`GroupRuntime::finish`]). Returns the final simulated
    /// time.
    pub fn finish(&mut self, until: SimTime) -> SimTime {
        self.run_until(until);
        self.core.shutdown.store(true, Ordering::Release);
        self.drain();
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(
                rounds <= MAX_FLUSH_ROUNDS,
                "shutdown flush did not converge"
            );
            let at = self.now.max(self.server_sched.now());
            self.server_sched.schedule_at(
                at,
                Envelope {
                    from: SERVER,
                    to: SERVER,
                    msg: RtMsg::Flush,
                },
            );
            self.drain();
            let (joins, leaves) = self.server.server.pending();
            if joins == 0 && leaves == 0 && self.server.pending_leave_acks.is_empty() {
                return self.now;
            }
        }
    }

    /// Current simulated time (the end of the last drained window).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Members dealt in at bootstrap (handles are `0..member_count()`).
    pub fn member_count(&self) -> usize {
        self.placement.len()
    }

    /// The server's group state machine.
    pub fn server(&self) -> &GroupServer {
        &self.server.server
    }

    /// The authoritative membership view.
    pub fn group(&self) -> &Group {
        self.server.server.group()
    }

    /// Member `handle`'s key agent (`None` after it departed).
    pub fn agent(&self, handle: usize) -> Option<&UserAgent> {
        let (shard_index, idx) = *self.placement.get(handle)?;
        self.shards[shard_index as usize].members[idx as usize]
            .agent
            .as_ref()
    }

    /// Member `handle`'s counters.
    pub fn member_stats(&self, handle: usize) -> MemberStats {
        let (shard_index, idx) = self.placement[handle];
        self.shards[shard_index as usize].members[idx as usize].stats
    }

    /// Verifies K-consistency of every live member's local table against
    /// the authoritative membership (test/debug helper; O(N²·D·B)).
    pub fn check_consistency(&self) -> Result<(), ConsistencyViolation> {
        let group = self.server.server.group();
        let members: Vec<Member> = group.members().to_vec();
        let tables: Vec<NeighborTable> = members
            .iter()
            .map(|m| {
                let (shard_index, idx) = self.placement[m.host.0];
                self.shards[shard_index as usize].members[idx as usize]
                    .table
                    .clone()
                    .expect("admitted member holds a table")
            })
            .collect();
        check_consistency(group.spec(), &members, &tables, group.k())
    }

    /// Aggregates the session's counters, histograms, and spans into the
    /// same [`MetricsSnapshot`] the classic runtime produces.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let server = self.server.stats;
        let registry = self.registry.snapshot();
        let counter = |name: &str| registry.counters.get(name).copied().unwrap_or(0);
        let metrics = self.core.metrics.lock().unwrap();
        let mut snapshot = MetricsSnapshot {
            intervals: server.intervals,
            members: self.group().len(),
            joins: server.joins,
            departures: server.departures,
            failures_detected: server.failures_detected,
            forward_copies: server.forward_copies,
            copies_lost: self.dropped_coord + self.shards.iter().map(|s| s.dropped).sum::<u64>(),
            dead_letters: 0,
            suppressed: 0,
            nacks: server.nacks,
            recovery_encryptions: server.recovery_encryptions,
            pings: 0,
            evictions: 0,
            retransmissions: 0,
            max_retry_attempts: 0,
            resyncs: server.resyncs,
            rejoins: 0,
            rehabilitations: 0,
            restarts: server.restarts,
            checkpoints: server.checkpoints,
            delivered: self.delivered_coord + self.shards.iter().map(|s| s.delivered).sum::<u64>(),
            welcomes: server.welcomes,
            leave_acks: server.leave_acks,
            tree_encryptions: counter("tree_encryptions"),
            tombstone_hits: counter("tree_tombstone_hits"),
            partition_cuts: 0,
            fault_loss_drops: 0,
            elections: server.elections,
            promotions: server.promotions,
            lost_mutations: server.lost_mutations,
            repl_lag_peak: server.repl_lag_peak,
            peak_queue_depth: self.peak_queue,
            apply_delay_us: metrics.apply_delay_us.snapshot(),
            batch_size: registry
                .histograms
                .get("tree_batch_size")
                .cloned()
                .unwrap_or_default(),
            split_payload: metrics.split_payload.snapshot(),
            forward_fanout: metrics.forward_fanout.snapshot(),
            recovery_size: metrics.recovery_size.snapshot(),
            spans: registry.spans,
            spans_dropped: registry.spans_dropped,
        };
        for &(shard_index, idx) in &self.placement {
            let stats = &self.shards[shard_index as usize].members[idx as usize].stats;
            snapshot.forward_copies += stats.copies_forwarded;
            snapshot.pings += stats.pings_sent;
            snapshot.evictions += stats.evictions;
            snapshot.retransmissions += stats.retransmissions;
            snapshot.max_retry_attempts = snapshot.max_retry_attempts.max(stats.max_retry_attempts);
            snapshot.rejoins += stats.rejoins;
            snapshot.rehabilitations += stats.rehabilitations;
        }
        snapshot
    }
}

impl<NET: Network + Sync> Driver for ShardedGroupRuntime<NET> {
    fn server_fsm(&self) -> &GroupServer {
        self.server()
    }

    fn member_count(&self) -> usize {
        self.placement.len()
    }

    fn agent_of(&self, handle: usize) -> Option<&UserAgent> {
        self.agent(handle)
    }

    fn leave(&mut self, handle: usize) {
        let at = self.now;
        self.leave_at(at, handle);
    }

    fn run_to_interval(&mut self, target: u64) -> bool {
        let period = self.core.knobs.rekey_period.max(4);
        for _ in 0..100_000 {
            let reached = self.server.server.interval() >= target
                && self.placement.iter().all(|&(shard_index, idx)| {
                    let member = &self.shards[shard_index as usize].members[idx as usize];
                    member.departed
                        || member
                            .agent
                            .as_ref()
                            .is_some_and(|a| a.interval() >= target)
                });
            if reached {
                return true;
            }
            let until = self.now + period / 4;
            self.run_until(until);
        }
        false
    }

    fn finish_run(&mut self) -> bool {
        let now = self.now;
        self.finish(now);
        true
    }

    fn verify_consistency(&self) -> Result<(), ConsistencyViolation> {
        self.check_consistency()
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.snapshot()
    }
}

/// The scoped spawns require `&mut Shard: Send`; pin that down as a
/// compile-time fact so a future `Rc` smuggled into member state fails
/// here with a readable error instead of inside `thread::scope`.
#[allow(dead_code)]
fn assert_shard_is_send() {
    fn is_send<T: Send>() {}
    is_send::<Shard>();
    is_send::<RtMember<Arc<ShardCore>>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;
    use rekey_net::GridNetwork;

    const MEMBERS: usize = 48;
    const PERIOD: SimTime = 400_000;

    fn build(shards: usize, loss: f64, seed: u64) -> ShardedGroupRuntime<GridNetwork> {
        let net = GridNetwork::new(MEMBERS + 1, 1_000, 100);
        let window = net.min_one_way();
        let group = GroupConfig::for_spec(&IdSpec::new(3, 4).unwrap())
            .k(2)
            .seed(11);
        let config = RuntimeConfig::builder()
            .rekey_period(PERIOD)
            .nack_grace(PERIOD / 4)
            // No heartbeats fire: the sharded runtime disarms them, but
            // keep the period out of the run anyway.
            .heartbeat_period(1 << 40)
            .loss(loss)
            .retry_base(PERIOD / 8)
            .seed(seed)
            .build();
        ShardedGroupRuntime::bootstrapped(group, config, net, MEMBERS, shards, window)
            .expect("bootstrap fits the ID space")
    }

    /// Every member bootstraps current, rekey intervals propagate
    /// through the overlay, and leaves depart cleanly — under loss, with
    /// multiple shards.
    #[test]
    fn sharded_run_keeps_members_current() {
        let mut rt = build(4, 0.05, 3);
        assert_eq!(rt.member_count(), MEMBERS);
        assert_eq!(rt.server().interval(), 1);

        rt.leave_at(PERIOD / 2, 7);
        rt.leave_at(PERIOD + PERIOD / 3, 19);
        let end = rt.finish(4 * PERIOD - PERIOD / 2);
        assert!(end >= 4 * PERIOD - PERIOD / 2);

        let report = rt.snapshot();
        assert_eq!(report.members, MEMBERS - 2);
        assert_eq!(report.departures, 2);
        assert_eq!(report.welcomes, MEMBERS as u64);
        assert_eq!(report.leave_acks, 2);
        assert!(report.intervals >= 3, "got {} intervals", report.intervals);
        assert_eq!(report.checkpoints, 0, "journal is disabled");
        assert_eq!(report.pings, 0, "heartbeats are disarmed");
        assert!(report.copies_lost > 0, "loss stream never drew");

        let server_interval = rt.server().interval();
        let group_key = rt.server().tree().group_key().expect("non-empty").clone();
        for handle in 0..MEMBERS {
            if handle == 7 || handle == 19 {
                assert!(rt.agent(handle).is_none(), "leaver {handle} kept its agent");
                continue;
            }
            let agent = rt.agent(handle).expect("survivor was welcomed");
            assert_eq!(agent.interval(), server_interval, "member {handle} lags");
            assert_eq!(agent.group_key(), Some(&group_key), "member {handle} stale");
        }
        rt.check_consistency().expect("tables stay K-consistent");
    }

    /// A crash propagates as a failure notice: the server departs the
    /// member and repairs the survivors' tables.
    #[test]
    fn sharded_failure_departs_the_member() {
        let mut rt = build(4, 0.0, 9);
        rt.fail_at(PERIOD / 2, 5, 6);
        rt.finish(3 * PERIOD);
        let report = rt.snapshot();
        assert_eq!(report.departures, 1);
        assert_eq!(report.failures_detected, 1);
        assert_eq!(report.members, MEMBERS - 1);
        rt.check_consistency()
            .expect("repair left tables consistent");
    }

    /// The executor is deterministic: identically seeded runs — threads,
    /// mutexes, and all — render byte-identical snapshot JSON, and a
    /// different seed diverges (the test would otherwise be vacuous).
    #[test]
    fn sharded_runs_are_byte_identical() {
        let run = |seed: u64| {
            let mut rt = build(4, 0.08, seed);
            rt.leave_at(PERIOD / 2, 11);
            rt.leave_at(2 * PERIOD + PERIOD / 4, 30);
            rt.finish(4 * PERIOD);
            rt.snapshot().to_json()
        };
        let first = run(0xD57E);
        let second = run(0xD57E);
        assert_eq!(first, second, "identical seeds must render identical JSON");
        let other = run(0xD57F);
        assert_ne!(first, other, "the seed must actually steer the run");
    }

    /// Shard count must not change results, only the execution layout:
    /// 1 shard (fully sequential) and 4 shards agree on every counter.
    #[test]
    fn shard_count_is_an_execution_detail() {
        let run = |shards: usize| {
            let mut rt = build(shards, 0.08, 21);
            rt.leave_at(PERIOD / 2, 11);
            rt.finish(3 * PERIOD);
            rt.snapshot().to_json()
        };
        // Loss draws are per-shard streams, so counters can only agree
        // when the shard layout matches — pin the weaker, still
        // meaningful property on a lossless run instead.
        let lossless = |shards: usize| {
            let mut rt = build(shards, 0.0, 21);
            rt.leave_at(PERIOD / 2, 11);
            rt.finish(3 * PERIOD);
            rt.snapshot().to_json()
        };
        assert_eq!(lossless(1), lossless(4));
        // And with loss, each layout is at least self-consistent.
        assert_eq!(run(2), run(2));
    }
}
