//! The real-socket driver: the sans-I/O protocol over loopback UDP.
//!
//! The sibling `core` module defines the protocol as pure state machines
//! — decoded
//! messages and timer ticks in, `(destination, payload, deadline)` out.
//! The simulation drivers bind those outputs to a virtual clock; this
//! module binds them to the operating system instead:
//!
//! * **time** is a shared [`Instant`] epoch, read as integer microseconds
//!   (so `SimTime` arithmetic inside the core is unchanged — one unit is
//!   one real microsecond);
//! * **sends** become UDP datagrams on `127.0.0.1` via
//!   [`rekey_net::udp::UdpEndpoint`], encoded with the versioned
//!   [`super::wire`] codec (`Forward` frames are trimmed to the
//!   receiver's related subset, the paper's REKEY-MESSAGE-SPLIT, so a
//!   frame never outgrows a datagram);
//! * **timers** land in per-thread binary heaps and fire when the wall
//!   clock passes them.
//!
//! # Topology
//!
//! One coordinator (the caller's thread) owns the server replica state
//! machines — one per configured replica, each behind its own socket on
//! nodes `0..replicas` — and `workers` threads each own one socket
//! *hosting many members*: member node `n` lives on worker
//! `(n − replicas) mod workers`, so a peer can route a frame from the
//! node number alone. The socket-layer header carries logical
//! source/destination nodes for demultiplexing. Replication traffic
//! between replicas travels over the same loopback sockets as member
//! traffic; [`UdpGroupDriver::kill_server`] silences a replica (its
//! datagrams and timers are discarded, like a crashed process) so tests
//! can exercise follower election and promotion on real packets.
//!
//! The coordinator only makes progress while a driver method runs
//! ([`UdpGroupDriver::run_to_interval`], [`UdpGroupDriver::finish`]):
//! between calls, arriving datagrams simply wait in the kernel's receive
//! buffer. Member workers run continuously, so forwarding, NACK
//! recovery, and neighbor repair proceed in real time.
//!
//! Packet loss is real: nothing is simulated, but kernel receive-buffer
//! overflow under fan-out bursts drops datagrams exactly where a
//! congested link would — and the protocol's NACK/recover path repairs
//! the gap. [`UdpGroupDriver::traffic`] reports what the endpoints saw.
//!
//! Unlike the simulation engines the wall clock is not deterministic, so
//! runs are *not* byte-reproducible; equivalence with the simulated
//! drivers is pinned by the `socket_equivalence` integration test, which
//! drives the same churn through both and compares final key trees.

use std::collections::BinaryHeap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rekey_id::IdSpec;
use rekey_net::udp::{EndpointStats, UdpEndpoint};

use super::shard::{CoordHandle, ShardCore};
use super::wire::{decode_msg, encode_forward_split, encode_msg};
use super::*;

use crate::GroupError;

/// Construction/runtime failures of the socket driver.
#[derive(Debug)]
pub enum SocketError {
    /// Group bootstrap failed (ID space exhausted, bad configuration).
    Group(GroupError),
    /// A socket could not be bound or driven.
    Io(std::io::Error),
}

impl std::fmt::Display for SocketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketError::Group(e) => write!(f, "group bootstrap failed: {e}"),
            SocketError::Io(e) => write!(f, "socket driver I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SocketError {}

impl From<GroupError> for SocketError {
    fn from(e: GroupError) -> SocketError {
        SocketError::Group(e)
    }
}

impl From<std::io::Error> for SocketError {
    fn from(e: std::io::Error) -> SocketError {
        SocketError::Io(e)
    }
}

/// Traffic totals over every endpoint (server + workers), plus protocol
/// decode failures. All counters are cumulative since construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocketTraffic {
    /// Frames handed to the kernel.
    pub packets_sent: u64,
    /// Well-formed frames received.
    pub packets_received: u64,
    /// Bytes handed to the kernel (headers included).
    pub bytes_sent: u64,
    /// Bytes received in well-formed frames.
    pub bytes_received: u64,
    /// Sends refused locally for exceeding the datagram ceiling.
    pub oversize_drops: u64,
    /// Datagrams with a short or version-skewed socket header.
    pub malformed_frames: u64,
    /// Frames whose protocol payload failed to decode.
    pub decode_errors: u64,
}

/// Where each logical node's datagrams go: server replicas occupy nodes
/// `0..servers.len()`, members hash onto the worker sockets past them.
struct Routes {
    servers: Vec<SocketAddr>,
    workers: Vec<SocketAddr>,
}

impl Routes {
    fn addr_of(&self, node: NodeId) -> SocketAddr {
        if node.0 < self.servers.len() {
            self.servers[node.0]
        } else {
            self.workers[(node.0 - self.servers.len()) % self.workers.len()]
        }
    }
}

/// A pending timer: the core's `(deadline, message)` output, bound to the
/// node it belongs to. Heap order is earliest-due first; `seq` breaks
/// ties in arming order.
struct TimerEntry {
    due: SimTime,
    seq: u64,
    node: NodeId,
    msg: RtMsg,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &TimerEntry) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &TimerEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &TimerEntry) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The [`Outputs`] binding of the socket driver: sends and timers are
/// collected into scratch vectors; the caller flushes sends onto the
/// wire and files timers into the owning thread's heap.
struct SocketCtx<'a> {
    now: SimTime,
    node: NodeId,
    sends: &'a mut Vec<(NodeId, RtMsg)>,
    timers: &'a mut Vec<(SimTime, RtMsg)>,
}

impl Outputs for SocketCtx<'_> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn self_id(&self) -> NodeId {
        self.node
    }
    fn send(&mut self, to: NodeId, msg: RtMsg) {
        self.sends.push((to, msg));
    }
    fn timer(&mut self, delay: SimTime, msg: RtMsg) {
        self.timers.push((delay, msg));
    }
}

/// Microseconds elapsed since the driver's epoch — the socket driver's
/// `SimTime`.
fn micros_since(epoch: Instant) -> SimTime {
    u64::try_from(epoch.elapsed().as_micros()).expect("run shorter than 584 000 years")
}

/// Serializes one protocol message for the wire. `Forward` frames are
/// trimmed to the receiver's related subset; everything else uses the
/// plain codec.
fn encode_payload(msg: &RtMsg, out: &mut Vec<u8>) {
    out.clear();
    match msg {
        RtMsg::Forward {
            level,
            prefix,
            message,
        } => encode_forward_split(*level, prefix, message, out),
        other => encode_msg(other, out),
    }
}

/// A freshly created member handed to a worker thread, with any timers
/// to arm (absolute microseconds since the epoch).
struct Seed {
    node: NodeId,
    member: RtMember<Arc<ShardCore>>,
    timers: Vec<(SimTime, RtMsg)>,
}

/// Coordinator → worker control messages.
enum WorkerCtl {
    /// Host a new member.
    Spawn(Box<Seed>),
    /// Deliver `msg` to `node` as a self-event (join/leave injection).
    Inject { node: NodeId, msg: RtMsg },
    /// Reply with the number of hosted members that have not yet applied
    /// rekey interval `target` (departed members excluded).
    Lag {
        target: u64,
        reply: mpsc::Sender<usize>,
    },
    /// Reply with the number of hosted members whose membership view is
    /// provably behind the server's (a buffered seq gap, an epoch-bump
    /// snapshot still owed, or a watermark ahead of the applied counter
    /// — the kernel-drop cases a resync has yet to repair).
    Stale { reply: mpsc::Sender<usize> },
    /// Drain the socket once more and return all hosted members.
    Stop,
}

/// What a stopping worker hands back: every member it hosted, keyed by
/// node id, ready for the coordinator's final consistency audit.
type CollectedMembers = Vec<(NodeId, RtMember<Arc<ShardCore>>)>;

/// Coordinator-side handle of one worker thread.
struct WorkerLink {
    ctl: mpsc::Sender<WorkerCtl>,
    stats: Arc<EndpointStats>,
    handle: Option<JoinHandle<CollectedMembers>>,
}

/// One worker thread: a socket, a timer heap, and the members it hosts.
struct Worker {
    endpoint: UdpEndpoint,
    ctl: mpsc::Receiver<WorkerCtl>,
    routes: Arc<Routes>,
    spec: IdSpec,
    epoch: Instant,
    poll: Duration,
    decode_errors: Arc<AtomicU64>,
    members: BTreeMap<usize, RtMember<Arc<ShardCore>>>,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
    /// Scratch buffers reused across events.
    sends: Vec<(NodeId, RtMsg)>,
    new_timers: Vec<(SimTime, RtMsg)>,
    frame: Vec<u8>,
    last_timeout: Option<Duration>,
}

impl Worker {
    fn run(mut self) -> CollectedMembers {
        loop {
            while let Ok(ctl) = self.ctl.try_recv() {
                match ctl {
                    WorkerCtl::Spawn(seed) => self.spawn(*seed),
                    WorkerCtl::Inject { node, msg } => self.deliver(node, node, msg),
                    WorkerCtl::Lag { target, reply } => {
                        // The receiver may already have given up; a
                        // dropped reply channel is not our problem.
                        let _ = reply.send(self.lagging(target));
                    }
                    WorkerCtl::Stale { reply } => {
                        let _ = reply.send(self.stale());
                    }
                    WorkerCtl::Stop => {
                        self.drain_socket();
                        return self
                            .members
                            .into_iter()
                            .map(|(n, m)| (NodeId(n), m))
                            .collect();
                    }
                }
            }
            self.fire_due_timers();
            self.receive_one();
        }
    }

    fn spawn(&mut self, seed: Seed) {
        for (due, msg) in seed.timers {
            self.timer_seq += 1;
            self.timers.push(TimerEntry {
                due,
                seq: self.timer_seq,
                node: seed.node,
                msg,
            });
        }
        self.members.insert(seed.node.0, seed.member);
    }

    /// Members that are live but have not applied interval `target` yet.
    /// A member mid-join (no agent) counts as lagging; a departed one
    /// does not.
    fn lagging(&self, target: u64) -> usize {
        self.members
            .values()
            .filter(|m| !m.departed)
            .filter(|m| m.agent.as_ref().is_none_or(|a| a.interval() < target))
            .count()
    }

    /// Members whose membership view is provably behind the server's —
    /// their pending resync must land before shutdown collects them.
    fn stale(&self) -> usize {
        self.members
            .values()
            .filter(|m| !m.departed && m.member.is_some())
            .filter(|m| m.sync_stale || !m.update_buf.is_empty() || m.seq_hint > m.applied_seq)
            .count()
    }

    /// Runs `node`'s state machine on one event and flushes its outputs.
    fn deliver(&mut self, node: NodeId, from: NodeId, msg: RtMsg) {
        let Some(member) = self.members.get_mut(&node.0) else {
            return; // stale frame for a node this worker never hosted
        };
        let now = micros_since(self.epoch);
        let mut ctx = SocketCtx {
            now,
            node,
            sends: &mut self.sends,
            timers: &mut self.new_timers,
        };
        member.receive(&mut ctx, from, msg);
        for (delay, msg) in self.new_timers.drain(..) {
            self.timer_seq += 1;
            self.timers.push(TimerEntry {
                due: now + delay.max(1),
                seq: self.timer_seq,
                node,
                msg,
            });
        }
        for (to, msg) in std::mem::take(&mut self.sends) {
            encode_payload(&msg, &mut self.frame);
            let peer = self.routes.addr_of(to);
            let _ = self
                .endpoint
                .send_frame(peer, node.0 as u32, to.0 as u32, &self.frame);
        }
    }

    fn fire_due_timers(&mut self) {
        loop {
            let now = micros_since(self.epoch);
            match self.timers.peek() {
                Some(t) if t.due <= now => {
                    let t = self.timers.pop().expect("peeked above");
                    self.deliver(t.node, t.node, t.msg);
                }
                _ => return,
            }
        }
    }

    /// Blocks for one frame, up to the earlier of the poll interval and
    /// the next timer deadline, and delivers it.
    fn receive_one(&mut self) {
        let now = micros_since(self.epoch);
        let mut timeout = self.poll;
        if let Some(t) = self.timers.peek() {
            timeout = timeout.min(Duration::from_micros(t.due.saturating_sub(now).max(1)));
        }
        if self.last_timeout != Some(timeout) {
            if self.endpoint.set_read_timeout(Some(timeout)).is_err() {
                return;
            }
            self.last_timeout = Some(timeout);
        }
        if let Ok(Some((header, payload))) = self.endpoint.recv_frame() {
            match decode_msg(payload, &self.spec) {
                Ok(msg) => {
                    let (src, dst) = (NodeId(header.src as usize), NodeId(header.dst as usize));
                    self.deliver(dst, src, msg);
                }
                Err(_) => {
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Final non-blocking drain so frames already in the kernel buffer
    /// are applied before the members are collected.
    fn drain_socket(&mut self) {
        if self
            .endpoint
            .set_read_timeout(Some(Duration::from_micros(1)))
            .is_err()
        {
            return;
        }
        self.last_timeout = Some(Duration::from_micros(1));
        for _ in 0..65_536 {
            match self.endpoint.recv_frame() {
                Ok(Some((header, payload))) => {
                    if let Ok(msg) = decode_msg(payload, &self.spec) {
                        let (src, dst) = (NodeId(header.src as usize), NodeId(header.dst as usize));
                        self.deliver(dst, src, msg);
                    } else {
                        self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(None) | Err(_) => return,
            }
        }
    }
}

/// One key-server replica on the coordinator thread: its state machine,
/// its own loopback socket, and a liveness flag. A dead replica's
/// datagrams and timers are discarded until it is revived — the socket
/// analogue of a crashed process whose kernel buffers drain to nowhere.
struct ServerSlot<NET: Network> {
    rt: RtServer<NET, CoordHandle>,
    endpoint: UdpEndpoint,
    alive: bool,
    last_timeout: Option<Duration>,
}

/// The real-socket group driver: the same protocol core as the
/// simulation runtimes, executed over loopback UDP in real time.
///
/// Built fully populated by [`UdpGroupDriver::bootstrapped`] (the
/// O(N·D·B) dealing pass of [`GroupConfig::bootstrap`], like the sharded
/// runtime), then churned with [`join`](UdpGroupDriver::join) and
/// [`leave`](UdpGroupDriver::leave) — both travel as real packets.
/// Advance the session with [`run_to_interval`], then [`finish`] to
/// flush, stop the workers, and collect every member for inspection
/// ([`agent`](UdpGroupDriver::agent),
/// [`check_consistency`](UdpGroupDriver::check_consistency)).
///
/// [`run_to_interval`]: UdpGroupDriver::run_to_interval
/// [`finish`]: UdpGroupDriver::finish
pub struct UdpGroupDriver<NET: Network> {
    /// Server replicas on nodes `0..servers.len()`; slot 0 is the
    /// initial primary.
    servers: Vec<ServerSlot<NET>>,
    routes: Arc<Routes>,
    epoch: Instant,
    poll: Duration,
    core: Arc<ShardCore>,
    registry: Registry,
    spec: IdSpec,
    workers: Vec<WorkerLink>,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
    peak_timers: usize,
    decode_errors: Arc<AtomicU64>,
    server_host: HostId,
    /// Handles dealt so far; handle `h` is node `h + replicas` on host `h`.
    handles: usize,
    /// Populated by [`UdpGroupDriver::finish`]: member state machines
    /// collected from the workers, indexed by handle.
    collected: Vec<Option<RtMember<Arc<ShardCore>>>>,
    finished: bool,
    sends: Vec<(NodeId, RtMsg)>,
    new_timers: Vec<(SimTime, RtMsg)>,
    frame: Vec<u8>,
}

impl<NET: Network> UdpGroupDriver<NET> {
    /// Builds a fully populated session: `members` members on hosts
    /// `0..members` (the server takes the network's last host), dealt
    /// into IDs and K-consistent tables by [`GroupConfig::bootstrap`],
    /// every agent welcomed at interval 1, the first rekey interval
    /// armed — and every member live on one of `workers` worker threads
    /// behind a real UDP socket.
    ///
    /// `net` is the RTT *model* the server consults for ID assignment
    /// and neighbor selection (loopback has no meaningful RTT spread);
    /// datagrams themselves travel at loopback speed.
    ///
    /// # Errors
    ///
    /// [`SocketError::Group`] when the dealing pass fails (ID space too
    /// small), [`SocketError::Io`] when a socket cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics when `workers == 0` or `members` leaves no host for the
    /// server.
    pub fn bootstrapped(
        group: GroupConfig,
        config: RuntimeConfig,
        net: NET,
        members: usize,
        workers: usize,
    ) -> Result<UdpGroupDriver<NET>, SocketError> {
        assert!(workers > 0, "need at least one worker thread");
        assert!(
            members < net.host_count(),
            "need a host per member plus one for the server"
        );
        let server_host = HostId(net.host_count() - 1);
        let net = Rc::new(net);
        let hosts: Vec<HostId> = (0..members).map(HostId).collect();
        let replicas = config.replicas();
        let knobs = Knobs::of_config(&config);

        let core = ShardCore::new(knobs);
        let registry = Registry::new();

        let mut worker_endpoints = Vec::with_capacity(workers);
        for _ in 0..workers {
            worker_endpoints.push(UdpEndpoint::bind_loopback()?);
        }
        let mut slots = Vec::with_capacity(replicas);
        // Every replica runs the same seeded dealing pass, so all start
        // from byte-identical group state — the socket equivalent of the
        // followers having replayed the primary's bootstrap log.
        let mut welcomes = Vec::new();
        for replica in 0..replicas {
            let (mut server_fsm, dealt) = group.clone().bootstrap(server_host, &hosts, &*net)?;
            if replica == 0 {
                server_fsm.instrument_tree(TreeMetrics::in_registry(&registry));
                welcomes = dealt;
            }
            let rt = RtServer {
                net: Rc::clone(&net),
                shared: CoordHandle::new(Arc::clone(&core), registry.clone()),
                server: server_fsm,
                epoch: 0,
                seq: 0,
                tick_gen: 0,
                next_interval_at: config.rekey_period(),
                last_round_at: 0,
                history: BTreeMap::new(),
                split_index: SplitIndexMaintainer::default(),
                journal: journal::Journal::disabled(),
                pending_leave_acks: Vec::new(),
                repl: Replication::new(replica, replicas),
                stats: ServerStats {
                    // The bootstrap deal is counted once, on the primary.
                    welcomes: if replica == 0 { members as u64 } else { 0 },
                    ..ServerStats::default()
                },
            };
            slots.push(ServerSlot {
                rt,
                endpoint: UdpEndpoint::bind_loopback()?,
                alive: true,
                last_timeout: None,
            });
        }
        let spec = *slots[0].rt.server.group().spec();
        let routes = Arc::new(Routes {
            servers: slots.iter().map(|s| s.endpoint.local_addr()).collect(),
            workers: worker_endpoints
                .iter()
                .map(UdpEndpoint::local_addr)
                .collect(),
        });

        let decode_errors = Arc::new(AtomicU64::new(0));
        let poll = Duration::from_millis(1);
        // The epoch starts *after* the dealing pass: interval deadlines
        // count from here, exactly like the simulators' time zero.
        let epoch = Instant::now();

        let mut links = Vec::with_capacity(workers);
        for worker_endpoint in worker_endpoints {
            let (ctl_tx, ctl_rx) = mpsc::channel();
            let stats = worker_endpoint.stats();
            let worker = Worker {
                endpoint: worker_endpoint,
                ctl: ctl_rx,
                routes: Arc::clone(&routes),
                spec,
                epoch,
                poll,
                decode_errors: Arc::clone(&decode_errors),
                members: BTreeMap::new(),
                timers: BinaryHeap::new(),
                timer_seq: 0,
                sends: Vec::new(),
                new_timers: Vec::new(),
                frame: Vec::new(),
                last_timeout: None,
            };
            let handle = std::thread::Builder::new()
                .name("rekey-udp-worker".into())
                .spawn(move || worker.run())
                .map_err(SocketError::Io)?;
            links.push(WorkerLink {
                ctl: ctl_tx,
                stats,
                handle: Some(handle),
            });
        }

        let mut driver = UdpGroupDriver {
            servers: slots,
            routes,
            epoch,
            poll,
            core,
            registry,
            spec,
            workers: links,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            peak_timers: 0,
            decode_errors,
            server_host,
            handles: 0,
            collected: Vec::new(),
            finished: false,
            sends: Vec::new(),
            new_timers: Vec::new(),
            frame: Vec::new(),
        };

        // Seed the pre-welcomed members, mirroring the sharded
        // bootstrap: agent current at interval 1, interval-2 check armed
        // at the first rekey boundary plus the NACK grace.
        let first_deadline = config.rekey_period() + config.nack_grace();
        for (i, welcome) in welcomes.into_iter().enumerate() {
            let record = driver.servers[0].rt.server.group().members()[i].clone();
            let table = driver.servers[0].rt.server.group().table(i).clone();
            debug_assert_eq!(record.id, welcome.id);

            let mut member = RtMember::new(Arc::clone(&driver.core));
            member.member = Some(record);
            member.table = Some(table);
            member.server_interval_seen = welcome.interval;
            member.agent = Some(UserAgent::from_welcome(welcome));
            member.check_gen = 1;
            member.next_boundary = config.rekey_period();
            member.expected_interval = 2;

            let node = NodeId(i + replicas);
            driver.handles += 1;
            driver
                .worker_of(node)
                .ctl
                .send(WorkerCtl::Spawn(Box::new(Seed {
                    node,
                    member,
                    timers: vec![(first_deadline, RtMsg::IntervalCheck { gen: 1 })],
                })))
                .expect("worker thread alive at bootstrap");
        }

        driver.arm_server_timer(
            SERVER,
            config.rekey_period(),
            RtMsg::IntervalTick { gen: 0 },
        );
        if replicas > 1 {
            // Mirror the simulator's replication bring-up: the primary
            // streams/heartbeats every half rekey period, followers run
            // staggered liveness checks so elections do not collide.
            driver.arm_server_timer(SERVER, knobs.repl_period(), RtMsg::ReplTick { gen: 0 });
            for r in 1..replicas {
                driver.arm_server_timer(
                    NodeId(r),
                    config.rekey_period() + r as SimTime * config.retry_base(),
                    RtMsg::ReplCheck { gen: 0 },
                );
            }
        }
        Ok(driver)
    }

    fn worker_of(&self, node: NodeId) -> &WorkerLink {
        &self.workers[(node.0 - self.servers.len()) % self.workers.len()]
    }

    /// The configured replica count (`servers.len()`).
    fn replicas(&self) -> usize {
        self.servers.len()
    }

    /// The replica currently acting as primary: the alive, non-diverged
    /// [`ReplRole::Primary`] with the highest epoch, falling back to
    /// replica 0 mid-election.
    fn acting_primary(&self) -> usize {
        self.servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && s.rt.repl.active && s.rt.repl.role == ReplRole::Primary)
            .max_by_key(|(_, s)| s.rt.epoch)
            .map(|(r, _)| r)
            .unwrap_or(0)
    }

    fn primary_rt(&self) -> &RtServer<NET, CoordHandle> {
        &self.servers[self.acting_primary()].rt
    }

    fn now_us(&self) -> SimTime {
        micros_since(self.epoch)
    }

    fn arm_server_timer(&mut self, node: NodeId, due: SimTime, msg: RtMsg) {
        self.timer_seq += 1;
        self.timers.push(TimerEntry {
            due,
            seq: self.timer_seq,
            node,
            msg,
        });
        self.peak_timers = self.peak_timers.max(self.timers.len());
    }

    /// Feeds one event to replica `slot`'s state machine and flushes its
    /// outputs onto the wire. Events for a killed replica are discarded.
    fn server_receive(&mut self, slot: usize, from: NodeId, msg: RtMsg) {
        if !self.servers[slot].alive {
            return;
        }
        let now = self.now_us();
        let node = NodeId(slot);
        let mut ctx = SocketCtx {
            now,
            node,
            sends: &mut self.sends,
            timers: &mut self.new_timers,
        };
        self.servers[slot].rt.receive(&mut ctx, from, msg);
        for (delay, msg) in self.new_timers.drain(..) {
            self.timer_seq += 1;
            self.timers.push(TimerEntry {
                due: now + delay.max(1),
                seq: self.timer_seq,
                node,
                msg,
            });
        }
        self.peak_timers = self.peak_timers.max(self.timers.len());
        for (to, msg) in std::mem::take(&mut self.sends) {
            encode_payload(&msg, &mut self.frame);
            let peer = self.routes.addr_of(to);
            let _ = self.servers[slot].endpoint.send_frame(
                peer,
                node.0 as u32,
                to.0 as u32,
                &self.frame,
            );
        }
    }

    /// Pumps the server replicas — timers and sockets — for up to
    /// `slice`. The wait budget of each beat is split across the alive
    /// replica sockets (with one replica this is the classic
    /// single-socket poll).
    fn pump(&mut self, slice: Duration) {
        let deadline = Instant::now() + slice;
        loop {
            loop {
                let now = self.now_us();
                match self.timers.peek() {
                    Some(t) if t.due <= now => {
                        let t = self.timers.pop().expect("peeked above");
                        debug_assert!(t.node.0 < self.servers.len());
                        self.server_receive(t.node.0, t.node, t.msg);
                    }
                    _ => break,
                }
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            let mut timeout = left.min(self.poll);
            if let Some(t) = self.timers.peek() {
                let gap = t.due.saturating_sub(self.now_us()).max(1);
                timeout = timeout.min(Duration::from_micros(gap));
            }
            let alive = self.servers.iter().filter(|s| s.alive).count();
            if alive == 0 {
                std::thread::sleep(timeout);
                continue;
            }
            let per_slot = (timeout / alive as u32).max(Duration::from_micros(1));
            for slot in 0..self.servers.len() {
                if !self.servers[slot].alive {
                    continue;
                }
                let decoded = {
                    let s = &mut self.servers[slot];
                    if s.last_timeout != Some(per_slot) {
                        if s.endpoint.set_read_timeout(Some(per_slot)).is_err() {
                            continue;
                        }
                        s.last_timeout = Some(per_slot);
                    }
                    match s.endpoint.recv_frame() {
                        Ok(Some((header, payload))) => match decode_msg(payload, &self.spec) {
                            Ok(msg) => Some((NodeId(header.src as usize), msg)),
                            Err(_) => {
                                self.decode_errors.fetch_add(1, Ordering::Relaxed);
                                None
                            }
                        },
                        _ => None,
                    }
                };
                if let Some((src, msg)) = decoded {
                    self.server_receive(slot, src, msg);
                }
            }
        }
    }

    /// Sum of members across all workers that have not applied interval
    /// `target` yet.
    fn lag(&mut self, target: u64) -> usize {
        let (reply_tx, reply_rx) = mpsc::channel();
        for link in &self.workers {
            link.ctl
                .send(WorkerCtl::Lag {
                    target,
                    reply: reply_tx.clone(),
                })
                .expect("worker thread alive");
        }
        drop(reply_tx);
        reply_rx.iter().sum()
    }

    /// Total members across all workers still owed a membership repair.
    fn stale_members(&mut self) -> usize {
        let (reply_tx, reply_rx) = mpsc::channel();
        for link in &self.workers {
            link.ctl
                .send(WorkerCtl::Stale {
                    reply: reply_tx.clone(),
                })
                .expect("worker thread alive");
        }
        drop(reply_tx);
        reply_rx.iter().sum()
    }

    /// Spawns a brand-new member that joins through the server over real
    /// packets. Returns its handle; the admission completes during
    /// subsequent [`UdpGroupDriver::run_to_interval`] pumping.
    ///
    /// # Panics
    ///
    /// Panics when the network model has no host left, or after
    /// [`UdpGroupDriver::finish`].
    pub fn join(&mut self) -> usize {
        assert!(!self.finished, "driver already finished");
        let handle = self.handles;
        assert!(
            handle < self.server_host.0,
            "substrate has no free host for another join"
        );
        self.handles += 1;
        let node = NodeId(handle + self.replicas());
        let member = RtMember::new(Arc::clone(&self.core));
        let link = self.worker_of(node);
        link.ctl
            .send(WorkerCtl::Spawn(Box::new(Seed {
                node,
                member,
                timers: Vec::new(),
            })))
            .expect("worker thread alive");
        link.ctl
            .send(WorkerCtl::Inject {
                node,
                msg: RtMsg::JoinRequest,
            })
            .expect("worker thread alive");
        handle
    }

    /// Requests a voluntary leave of member `handle` (a real
    /// `LeaveRequest` datagram follows).
    ///
    /// # Panics
    ///
    /// Panics on a handle that was never dealt, or after
    /// [`UdpGroupDriver::finish`].
    pub fn leave(&mut self, handle: usize) {
        assert!(!self.finished, "driver already finished");
        assert!(handle < self.handles, "member handle {handle} never joined");
        let node = NodeId(handle + self.replicas());
        self.worker_of(node)
            .ctl
            .send(WorkerCtl::Inject {
                node,
                msg: RtMsg::LeaveRequest,
            })
            .expect("worker thread alive");
    }

    /// Kills server replica `replica`: from now on its datagrams and
    /// timers are silently discarded, exactly as if the process died.
    /// With replicas configured, a follower detects the silence and
    /// promotes itself over real packets.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range replica index.
    pub fn kill_server(&mut self, replica: usize) {
        assert!(replica < self.servers.len(), "no such replica");
        self.servers[replica].alive = false;
    }

    /// Revives a previously killed replica: it rejoins as a follower via
    /// the protocol's `Restart` path and catches up from the acting
    /// primary's replication stream.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range replica index.
    pub fn revive_server(&mut self, replica: usize) {
        assert!(replica < self.servers.len(), "no such replica");
        if self.servers[replica].alive {
            return;
        }
        self.servers[replica].alive = true;
        let node = NodeId(replica);
        self.server_receive(replica, node, RtMsg::Restart);
    }

    /// Pumps the session until the acting primary has completed rekey
    /// interval `target` *and* every live member has applied it, or
    /// `timeout` elapses. Returns whether the target was reached.
    pub fn run_to_interval(&mut self, target: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump(Duration::from_millis(20));
            if self.primary_rt().server.interval() >= target && self.lag(target) == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// Shuts the session down: raises the shutdown flag (timers stop
    /// re-arming), then runs server flush rounds until no membership
    /// work or leave ack is outstanding (mirroring the simulators'
    /// `finish`), stops the workers, and collects every member state
    /// machine for inspection. Returns `true` when the flush converged
    /// within `timeout`.
    ///
    /// Idempotent: later calls return `true` without further effect.
    pub fn finish(&mut self, timeout: Duration) -> bool {
        if self.finished {
            return true;
        }
        self.core.begin_shutdown();
        let deadline = Instant::now() + timeout;
        let mut converged = false;
        while !converged {
            // Flush whichever replica is acting primary — after a
            // failover that is the promoted follower.
            let primary = self.acting_primary();
            self.server_receive(primary, NodeId(primary), RtMsg::Flush);
            self.pump(Duration::from_millis(40));
            let primary = self.acting_primary();
            let (joins, leaves) = self.servers[primary].rt.server.pending();
            // Beyond the server's own queues, wait for every member's
            // repairs: the flush's `Recover` broadcast carries both the
            // latest key material and the mutation watermark, so a
            // member that lost an interval or the tail of the
            // `MemberLeft` stream to a kernel drop NACKs or resyncs now
            // — those replies must land before workers are collected.
            let interval = self.servers[primary].rt.server.interval();
            converged = joins == 0
                && leaves == 0
                && self.servers[primary].rt.pending_leave_acks.is_empty()
                && self.lag(interval) == 0
                && self.stale_members() == 0;
            if !converged && Instant::now() >= deadline {
                break;
            }
        }
        // Give in-flight repair broadcasts one more beat, then collect.
        self.pump(Duration::from_millis(40));
        self.collected = (0..self.handles).map(|_| None).collect();
        for link in &mut self.workers {
            link.ctl.send(WorkerCtl::Stop).expect("worker thread alive");
        }
        let replicas = self.replicas();
        for link in &mut self.workers {
            let members = link
                .handle
                .take()
                .expect("worker joined once")
                .join()
                .expect("worker thread did not panic");
            for (node, member) in members {
                self.collected[node.0 - replicas] = Some(member);
            }
        }
        self.finished = true;
        converged
    }

    /// The authoritative server state machine (the acting primary's).
    pub fn server(&self) -> &GroupServer {
        &self.primary_rt().server
    }

    /// The authoritative membership view (the acting primary's).
    pub fn group(&self) -> &Group {
        self.primary_rt().server.group()
    }

    /// The index of the replica currently acting as primary (0 until a
    /// failover promotes a follower).
    pub fn primary_replica(&self) -> usize {
        self.acting_primary()
    }

    /// Handles dealt so far (alive or departed).
    pub fn member_count(&self) -> usize {
        self.handles
    }

    /// Member `handle`'s key agent. Only available after
    /// [`UdpGroupDriver::finish`] (members live on worker threads until
    /// then); `None` for a departed or never-admitted member.
    pub fn agent(&self, handle: usize) -> Option<&UserAgent> {
        self.collected.get(handle)?.as_ref()?.agent.as_ref()
    }

    /// Member `handle`'s counters (zeros before [`UdpGroupDriver::finish`]).
    pub fn member_stats(&self, handle: usize) -> MemberStats {
        self.collected
            .get(handle)
            .and_then(|m| m.as_ref())
            .map(|m| m.stats)
            .unwrap_or_default()
    }

    /// Verifies K-consistency of every live member's local table against
    /// the authoritative membership. Call after
    /// [`UdpGroupDriver::finish`].
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    ///
    /// # Panics
    ///
    /// Panics before [`UdpGroupDriver::finish`] (members not collected
    /// yet) or when an admitted member is missing its table.
    pub fn check_consistency(&self) -> Result<(), ConsistencyViolation> {
        assert!(self.finished, "collect members with finish() first");
        let group = self.primary_rt().server.group();
        let members: Vec<Member> = group.members().to_vec();
        let tables: Vec<NeighborTable> = members
            .iter()
            .map(|m| {
                self.collected[m.host.0]
                    .as_ref()
                    .expect("admitted member was collected")
                    .table
                    .clone()
                    .expect("admitted member holds a table")
            })
            .collect();
        check_consistency(group.spec(), &members, &tables, group.k())
    }

    /// Aggregated endpoint traffic (server + all workers).
    pub fn traffic(&self) -> SocketTraffic {
        let mut total = SocketTraffic {
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            ..SocketTraffic::default()
        };
        let mut absorb = |stats: &EndpointStats| {
            total.packets_sent += stats.packets_sent.load(Ordering::Relaxed);
            total.packets_received += stats.packets_received.load(Ordering::Relaxed);
            total.bytes_sent += stats.bytes_sent.load(Ordering::Relaxed);
            total.bytes_received += stats.bytes_received.load(Ordering::Relaxed);
            total.oversize_drops += stats.oversize_drops.load(Ordering::Relaxed);
            total.malformed_frames += stats.malformed_frames.load(Ordering::Relaxed);
        };
        for slot in &self.servers {
            absorb(&slot.endpoint.stats());
        }
        for link in &self.workers {
            absorb(&link.stats);
        }
        total
    }

    /// Aggregates the session's counters and histograms into the same
    /// [`MetricsSnapshot`] shape the simulation runtimes produce.
    /// `delivered` counts received frames; `copies_lost` counts local
    /// oversize drops (kernel drops are invisible — they surface as NACK
    /// recoveries instead). Member-side counters are merged only after
    /// [`UdpGroupDriver::finish`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Sum mutation counters across the replica fleet: each mutation
        // is counted once, by whichever replica was primary when it was
        // applied, so the sum reads like a single logical server.
        let mut server = ServerStats::default();
        for slot in &self.servers {
            let s = &slot.rt.stats;
            server.intervals += s.intervals;
            server.joins += s.joins;
            server.departures += s.departures;
            server.failures_detected += s.failures_detected;
            server.forward_copies += s.forward_copies;
            server.nacks += s.nacks;
            server.recovery_encryptions += s.recovery_encryptions;
            server.welcomes += s.welcomes;
            server.resyncs += s.resyncs;
            server.restarts += s.restarts;
            server.checkpoints += s.checkpoints;
            server.leave_acks += s.leave_acks;
            server.elections += s.elections;
            server.promotions += s.promotions;
            server.lost_mutations += s.lost_mutations;
            server.repl_lag_peak = server.repl_lag_peak.max(s.repl_lag_peak);
        }
        let registry = self.registry.snapshot();
        let counter = |name: &str| registry.counters.get(name).copied().unwrap_or(0);
        let traffic = self.traffic();
        let [apply_delay_us, split_payload, forward_fanout, recovery_size] =
            self.core.member_histograms();
        let mut snapshot = MetricsSnapshot {
            intervals: server.intervals,
            members: self.group().len(),
            joins: server.joins,
            departures: server.departures,
            failures_detected: server.failures_detected,
            forward_copies: server.forward_copies,
            copies_lost: traffic.oversize_drops,
            dead_letters: traffic.malformed_frames + traffic.decode_errors,
            suppressed: 0,
            nacks: server.nacks,
            recovery_encryptions: server.recovery_encryptions,
            pings: 0,
            evictions: 0,
            retransmissions: 0,
            max_retry_attempts: 0,
            resyncs: server.resyncs,
            rejoins: 0,
            rehabilitations: 0,
            restarts: server.restarts,
            checkpoints: server.checkpoints,
            delivered: traffic.packets_received,
            welcomes: server.welcomes,
            leave_acks: server.leave_acks,
            tree_encryptions: counter("tree_encryptions"),
            tombstone_hits: counter("tree_tombstone_hits"),
            partition_cuts: 0,
            fault_loss_drops: 0,
            elections: server.elections,
            promotions: server.promotions,
            lost_mutations: server.lost_mutations,
            repl_lag_peak: server.repl_lag_peak,
            peak_queue_depth: self.peak_timers,
            apply_delay_us,
            batch_size: registry
                .histograms
                .get("tree_batch_size")
                .cloned()
                .unwrap_or_default(),
            split_payload,
            forward_fanout,
            recovery_size,
            spans: registry.spans,
            spans_dropped: registry.spans_dropped,
        };
        for member in self.collected.iter().flatten() {
            let stats = &member.stats;
            snapshot.forward_copies += stats.copies_forwarded;
            snapshot.pings += stats.pings_sent;
            snapshot.evictions += stats.evictions;
            snapshot.retransmissions += stats.retransmissions;
            snapshot.max_retry_attempts = snapshot.max_retry_attempts.max(stats.max_retry_attempts);
            snapshot.rejoins += stats.rejoins;
            snapshot.rehabilitations += stats.rehabilitations;
        }
        snapshot
    }
}

/// The [`Driver`] binding uses a 60-second patience budget per advance,
/// generous for loopback; use the inherent methods to pick timeouts.
impl<NET: Network> Driver for UdpGroupDriver<NET> {
    fn server_fsm(&self) -> &GroupServer {
        self.server()
    }

    fn member_count(&self) -> usize {
        self.handles
    }

    fn agent_of(&self, handle: usize) -> Option<&UserAgent> {
        self.agent(handle)
    }

    fn leave(&mut self, handle: usize) {
        UdpGroupDriver::leave(self, handle);
    }

    fn run_to_interval(&mut self, target: u64) -> bool {
        UdpGroupDriver::run_to_interval(self, target, Duration::from_secs(60))
    }

    fn finish_run(&mut self) -> bool {
        self.finish(Duration::from_secs(60))
    }

    fn verify_consistency(&self) -> Result<(), ConsistencyViolation> {
        self.check_consistency()
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.snapshot()
    }
}

impl<NET: Network> Drop for UdpGroupDriver<NET> {
    fn drop(&mut self) {
        if !self.finished {
            // Stop the worker threads even on an abandoned session; the
            // members they return are discarded.
            for link in &mut self.workers {
                let _ = link.ctl.send(WorkerCtl::Stop);
            }
            for link in &mut self.workers {
                if let Some(handle) = link.handle.take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;
    use rekey_net::GridNetwork;

    const PERIOD: SimTime = 120_000; // 120 ms real time per interval

    fn driver(members: usize, seed: u64) -> UdpGroupDriver<GridNetwork> {
        let net = GridNetwork::new(members + 8, 1_000, 100);
        let group = GroupConfig::for_spec(&IdSpec::new(3, 4).unwrap())
            .k(2)
            .seed(11);
        let config = RuntimeConfig::builder()
            .rekey_period(PERIOD)
            .nack_grace(PERIOD / 4)
            .heartbeat_period(1 << 40)
            .retry_base(PERIOD / 8)
            .seed(seed)
            .build();
        UdpGroupDriver::bootstrapped(group, config, net, members, 2).expect("driver builds")
    }

    /// Bootstrap, one leave and one fresh join over real packets, three
    /// rekey intervals, clean shutdown: everyone K-consistent and
    /// current.
    #[test]
    fn loopback_session_reaches_consistency() {
        let mut rt = driver(12, 3);
        assert_eq!(rt.server().interval(), 1);

        rt.leave(5);
        assert!(rt.run_to_interval(2, Duration::from_secs(20)), "interval 2");
        let joined = rt.join();
        assert!(rt.run_to_interval(3, Duration::from_secs(20)), "interval 3");
        assert!(rt.finish(Duration::from_secs(20)), "flush converged");

        assert!(rt.agent(5).is_none(), "leaver kept its agent");
        let group_key = rt.server().tree().group_key().expect("non-empty group");
        let agent = rt.agent(joined).expect("joiner was admitted");
        assert_eq!(agent.group_key(), Some(group_key));
        for handle in 0..rt.member_count() {
            if handle == 5 {
                continue;
            }
            let agent = rt.agent(handle).expect("survivor holds an agent");
            assert_eq!(agent.group_key(), Some(group_key), "member {handle} stale");
        }
        rt.check_consistency().expect("tables stay K-consistent");

        let report = rt.snapshot();
        assert_eq!(report.departures, 1);
        assert_eq!(report.joins, 1);
        assert!(report.intervals >= 2);
        let traffic = rt.traffic();
        assert!(traffic.packets_received > 0, "no real packets flowed");
        assert_eq!(traffic.malformed_frames, 0);
        assert_eq!(traffic.decode_errors, 0);
    }
}
