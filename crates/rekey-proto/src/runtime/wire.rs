//! Versioned wire codec for [`RtMsg`]: what the socket driver puts in
//! UDP datagrams.
//!
//! Built on the primitives of [`rekey_crypto::wire`] (little-endian,
//! length-prefixed, bounds-checked [`Reader`]). Every frame is
//!
//! ```text
//! Frame   := version:u8 (= WIRE_VERSION), tag:u8, body
//! UserId  := IdPrefix                  (full-depth prefix)
//! Member  := id:UserId, host:u64, joined_at:u64
//! Record  := Member, rtt:u64
//! Table   := owner:UserId, k:u16, policy:u8, count:u32, Record*
//! Welcome := id:UserId, interval:u64, count:u32, Key*
//! Prefix  := len:u8, digits:[u16; len]
//! IvalMsg := interval:u64, epoch:u64, sent_at:u64, count:u32, Encryption*
//! ```
//!
//! Two deliberate asymmetries keep frames small and the codec total:
//!
//! * an [`IntervalMessage`]'s split index is **not** serialized — the
//!   decoder rebuilds it with [`SplitIndex::build`] over the decoded
//!   encryptions, which addresses the same related sets (the index is a
//!   pure function of the encryption IDs);
//! * a [`NeighborTable`] is serialized as its record list and rebuilt by
//!   re-insertion, which reproduces the RTT-sorted entries exactly.
//!
//! Decoding is a total function over arbitrary bytes: truncated, corrupt,
//! or version-skewed frames return a [`WireError`] — never a panic. The
//! round-trip property (`decode(encode(m)) == m` up to `Arc` identity)
//! is pinned by a proptest in `tests/rtmsg_wire.rs`.

use std::fmt;
use std::sync::Arc;

use rekey_crypto::wire::{
    decode_encryption_from, decode_key_from, decode_prefix, encode_encryption, encode_key,
    encode_prefix, DecodeError, Reader,
};
use rekey_id::{IdSpec, UserId};
use rekey_net::HostId;
use rekey_table::{Member, NeighborRecord, NeighborTable, PrimaryPolicy};

use crate::transport::{PrefixBuf, SplitIndex, MAX_DEPTH};
use crate::WelcomePacket;

use super::core::{IntervalMessage, ReplOp, RtMsg};

/// The codec version stamped on every frame. Decoders reject frames from
/// any other version outright — rolling upgrades run one version per
/// deployment, matching the single-server protocol.
pub const WIRE_VERSION: u8 = 1;

/// Errors produced while decoding an [`RtMsg`] frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame's leading version byte is not [`WIRE_VERSION`].
    Version(u8),
    /// The message tag byte does not name any [`RtMsg`] variant.
    UnknownTag(u8),
    /// A field held a value the protocol cannot represent (the `&str`
    /// names the field).
    BadValue(&'static str),
    /// A nested structure failed to decode.
    Bytes(DecodeError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Version(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadValue(what) => write!(f, "field out of range: {what}"),
            WireError::Bytes(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> WireError {
        WireError::Bytes(e)
    }
}

const TAG_INTERVAL_TICK: u8 = 0x01;
const TAG_FLUSH: u8 = 0x02;
const TAG_RESTART: u8 = 0x03;
const TAG_JOIN_REQUEST: u8 = 0x04;
const TAG_JOIN_ACCEPTED: u8 = 0x05;
const TAG_WELCOME: u8 = 0x06;
const TAG_NEW_MEMBER: u8 = 0x07;
const TAG_LEAVE_REQUEST: u8 = 0x08;
const TAG_LEAVE_ACK: u8 = 0x09;
const TAG_MEMBER_LEFT: u8 = 0x0A;
const TAG_FAILURE_NOTICE: u8 = 0x0B;
const TAG_FORWARD: u8 = 0x0C;
const TAG_NACK: u8 = 0x0D;
const TAG_RECOVER: u8 = 0x0E;
const TAG_PING: u8 = 0x0F;
const TAG_PONG: u8 = 0x10;
const TAG_SERVER_PING: u8 = 0x11;
const TAG_SERVER_PONG: u8 = 0x12;
const TAG_NOT_MEMBER: u8 = 0x13;
const TAG_RESYNC_REQUEST: u8 = 0x14;
const TAG_RESYNC: u8 = 0x15;
const TAG_HEARTBEAT_TICK: u8 = 0x16;
const TAG_INTERVAL_CHECK: u8 = 0x17;
const TAG_RETRY_TICK: u8 = 0x18;
const TAG_REPL_ENTRY: u8 = 0x19;
const TAG_REPL_ACK: u8 = 0x1A;
const TAG_REPL_HEARTBEAT: u8 = 0x1B;
const TAG_CANDIDACY: u8 = 0x1C;
const TAG_REPL_TICK: u8 = 0x1D;
const TAG_REPL_CHECK: u8 = 0x1E;
const TAG_ELECTION_TICK: u8 = 0x1F;

/// `ReplOp` body: `op:u8` (0 = Join, 1 = Leave, 2 = Interval) + fields.
const OP_JOIN: u8 = 0;
const OP_LEAVE: u8 = 1;
const OP_INTERVAL: u8 = 2;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_user_id(out: &mut Vec<u8>, id: &UserId) {
    encode_prefix(out, &id.as_prefix());
}

fn get_user_id(r: &mut Reader<'_>, spec: &IdSpec) -> Result<UserId, WireError> {
    let p = decode_prefix(r, spec)?;
    if p.len() != spec.depth() {
        return Err(WireError::BadValue("user id depth"));
    }
    UserId::new(spec, p.digits().to_vec()).map_err(|_| WireError::BadValue("user id digits"))
}

fn put_member(out: &mut Vec<u8>, m: &Member) {
    put_user_id(out, &m.id);
    put_u64(out, m.host.0 as u64);
    put_u64(out, m.joined_at);
}

fn get_member(r: &mut Reader<'_>, spec: &IdSpec) -> Result<Member, WireError> {
    let id = get_user_id(r, spec)?;
    let host = r.u64()?;
    let joined_at = r.u64()?;
    let host = usize::try_from(host).map_err(|_| WireError::BadValue("host id"))?;
    Ok(Member {
        id,
        host: HostId(host),
        joined_at,
    })
}

fn put_record(out: &mut Vec<u8>, rec: &NeighborRecord) {
    put_member(out, &rec.member);
    put_u64(out, rec.rtt);
}

fn get_record(r: &mut Reader<'_>, spec: &IdSpec) -> Result<NeighborRecord, WireError> {
    let member = get_member(r, spec)?;
    let rtt = r.u64()?;
    Ok(NeighborRecord { member, rtt })
}

fn put_table(out: &mut Vec<u8>, t: &NeighborTable) {
    put_user_id(out, t.owner());
    out.extend_from_slice(&(t.k() as u16).to_le_bytes());
    out.push(match t.policy() {
        PrimaryPolicy::SmallestRtt => 0,
        PrimaryPolicy::EarliestJoinAtBottom => 1,
    });
    let records: Vec<&NeighborRecord> = t.iter_all().collect();
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for rec in records {
        put_record(out, rec);
    }
}

fn get_table(r: &mut Reader<'_>, spec: &IdSpec) -> Result<NeighborTable, WireError> {
    let owner = get_user_id(r, spec)?;
    let k = usize::from(r.u16()?);
    let policy = match r.u8()? {
        0 => PrimaryPolicy::SmallestRtt,
        1 => PrimaryPolicy::EarliestJoinAtBottom,
        _ => return Err(WireError::BadValue("primary policy")),
    };
    if k == 0 {
        return Err(WireError::BadValue("table capacity"));
    }
    let count = r.u32()? as usize;
    let mut table = NeighborTable::new(spec, owner, k, policy);
    for _ in 0..count {
        // Re-insertion reproduces the sender's table: `iter_all` yields
        // entries in (row, digit, rtt) order and `insert` is stable on
        // RTT ties, so order and primaries survive the round trip.
        table.insert(get_record(r, spec)?);
    }
    Ok(table)
}

fn put_welcome(out: &mut Vec<u8>, w: &WelcomePacket) {
    put_user_id(out, &w.id);
    put_u64(out, w.interval);
    out.extend_from_slice(&(w.keys.len() as u32).to_le_bytes());
    for k in &w.keys {
        encode_key(k, out);
    }
}

fn get_welcome(r: &mut Reader<'_>, spec: &IdSpec) -> Result<WelcomePacket, WireError> {
    let id = get_user_id(r, spec)?;
    let interval = r.u64()?;
    let count = r.u32()? as usize;
    let mut keys = Vec::with_capacity(count.min(1 << 12));
    for _ in 0..count {
        keys.push(decode_key_from(r, spec)?);
    }
    Ok(WelcomePacket { id, keys, interval })
}

fn put_prefix_buf(out: &mut Vec<u8>, p: &PrefixBuf) {
    let digits = p.as_slice();
    out.push(digits.len() as u8);
    for &d in digits {
        out.extend_from_slice(&d.to_le_bytes());
    }
}

fn get_prefix_buf(r: &mut Reader<'_>) -> Result<PrefixBuf, WireError> {
    let len = usize::from(r.u8()?);
    if len > MAX_DEPTH {
        return Err(WireError::BadValue("prefix depth"));
    }
    let mut digits = [0u16; MAX_DEPTH];
    for d in digits.iter_mut().take(len) {
        *d = r.u16()?;
    }
    Ok(PrefixBuf::new(&digits[..len]))
}

fn put_interval_message(out: &mut Vec<u8>, m: &IntervalMessage) {
    put_u64(out, m.interval);
    put_u64(out, m.epoch);
    put_u64(out, m.sent_at);
    put_u64(out, m.seq);
    out.extend_from_slice(&(m.encryptions.len() as u32).to_le_bytes());
    for e in &m.encryptions {
        encode_encryption(e, out);
    }
}

fn get_interval_message(r: &mut Reader<'_>, spec: &IdSpec) -> Result<IntervalMessage, WireError> {
    let interval = r.u64()?;
    let epoch = r.u64()?;
    let sent_at = r.u64()?;
    let seq = r.u64()?;
    let count = r.u32()? as usize;
    let mut encryptions = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        encryptions.push(decode_encryption_from(r, spec)?);
    }
    let index = SplitIndex::build(&encryptions);
    Ok(IntervalMessage {
        interval,
        epoch,
        sent_at,
        seq,
        encryptions,
        index,
    })
}

fn put_repl_op(out: &mut Vec<u8>, op: &ReplOp) {
    match op {
        ReplOp::Join { host, at } => {
            out.push(OP_JOIN);
            put_u64(out, host.0 as u64);
            put_u64(out, *at);
        }
        ReplOp::Leave { id } => {
            out.push(OP_LEAVE);
            put_user_id(out, id);
        }
        ReplOp::Interval { sent_at } => {
            out.push(OP_INTERVAL);
            put_u64(out, *sent_at);
        }
    }
}

fn get_repl_op(r: &mut Reader<'_>, spec: &IdSpec) -> Result<ReplOp, WireError> {
    match r.u8()? {
        OP_JOIN => {
            let host = r.u64()?;
            let host = usize::try_from(host).map_err(|_| WireError::BadValue("host id"))?;
            let at = r.u64()?;
            Ok(ReplOp::Join {
                host: HostId(host),
                at,
            })
        }
        OP_LEAVE => Ok(ReplOp::Leave {
            id: get_user_id(r, spec)?,
        }),
        OP_INTERVAL => Ok(ReplOp::Interval { sent_at: r.u64()? }),
        _ => Err(WireError::BadValue("replication op")),
    }
}

/// Appends one versioned [`RtMsg`] frame to `out`.
///
/// Every variant encodes — including the timer ticks that never cross a
/// real wire — so drivers and tests can treat the codec as total.
pub fn encode_msg(msg: &RtMsg, out: &mut Vec<u8>) {
    out.push(WIRE_VERSION);
    match msg {
        RtMsg::IntervalTick { gen } => {
            out.push(TAG_INTERVAL_TICK);
            put_u64(out, *gen);
        }
        RtMsg::Flush => out.push(TAG_FLUSH),
        RtMsg::Restart => out.push(TAG_RESTART),
        RtMsg::JoinRequest => out.push(TAG_JOIN_REQUEST),
        RtMsg::JoinAccepted {
            member,
            table,
            epoch,
            seq,
        } => {
            out.push(TAG_JOIN_ACCEPTED);
            put_member(out, member);
            put_table(out, table);
            put_u64(out, *epoch);
            put_u64(out, *seq);
        }
        RtMsg::Welcome {
            welcome,
            epoch,
            next_interval_at,
        } => {
            out.push(TAG_WELCOME);
            put_welcome(out, welcome);
            put_u64(out, *epoch);
            put_u64(out, *next_interval_at);
        }
        RtMsg::NewMember {
            record,
            rtt,
            epoch,
            seq,
        } => {
            out.push(TAG_NEW_MEMBER);
            put_member(out, record);
            put_u64(out, *rtt);
            put_u64(out, *epoch);
            put_u64(out, *seq);
        }
        RtMsg::LeaveRequest => out.push(TAG_LEAVE_REQUEST),
        RtMsg::LeaveAck => out.push(TAG_LEAVE_ACK),
        RtMsg::MemberLeft {
            departed,
            replacements,
            epoch,
            seq,
        } => {
            out.push(TAG_MEMBER_LEFT);
            put_user_id(out, departed);
            out.extend_from_slice(&(replacements.len() as u32).to_le_bytes());
            for (m, rtt) in replacements {
                put_member(out, m);
                put_u64(out, *rtt);
            }
            put_u64(out, *epoch);
            put_u64(out, *seq);
        }
        RtMsg::FailureNotice { failed } => {
            out.push(TAG_FAILURE_NOTICE);
            put_user_id(out, failed);
        }
        RtMsg::Forward {
            level,
            prefix,
            message,
        } => {
            out.push(TAG_FORWARD);
            out.push(*level as u8);
            put_prefix_buf(out, prefix);
            put_interval_message(out, message);
        }
        RtMsg::Nack { interval } => {
            out.push(TAG_NACK);
            put_u64(out, *interval);
        }
        RtMsg::Recover {
            interval,
            encryptions,
            sent_at,
            seq,
        } => {
            out.push(TAG_RECOVER);
            put_u64(out, *interval);
            put_u64(out, *sent_at);
            put_u64(out, *seq);
            out.extend_from_slice(&(encryptions.len() as u32).to_le_bytes());
            for e in encryptions {
                encode_encryption(e, out);
            }
        }
        RtMsg::Ping { token } => {
            out.push(TAG_PING);
            put_u64(out, *token);
        }
        RtMsg::Pong { token } => {
            out.push(TAG_PONG);
            put_u64(out, *token);
        }
        RtMsg::ServerPing { id } => {
            out.push(TAG_SERVER_PING);
            put_user_id(out, id);
        }
        RtMsg::ServerPong {
            epoch,
            seq,
            interval,
        } => {
            out.push(TAG_SERVER_PONG);
            put_u64(out, *epoch);
            put_u64(out, *seq);
            put_u64(out, *interval);
        }
        RtMsg::NotMember { id } => {
            out.push(TAG_NOT_MEMBER);
            put_user_id(out, id);
        }
        RtMsg::ResyncRequest { id } => {
            out.push(TAG_RESYNC_REQUEST);
            put_user_id(out, id);
        }
        RtMsg::Resync {
            member,
            table,
            welcome,
            epoch,
            seq,
            next_interval_at,
        } => {
            out.push(TAG_RESYNC);
            put_member(out, member);
            put_table(out, table);
            put_welcome(out, welcome);
            put_u64(out, *epoch);
            put_u64(out, *seq);
            put_u64(out, *next_interval_at);
        }
        RtMsg::HeartbeatTick { gen } => {
            out.push(TAG_HEARTBEAT_TICK);
            put_u64(out, *gen);
        }
        RtMsg::IntervalCheck { gen } => {
            out.push(TAG_INTERVAL_CHECK);
            put_u64(out, *gen);
        }
        RtMsg::RetryTick { gen } => {
            out.push(TAG_RETRY_TICK);
            put_u64(out, *gen);
        }
        RtMsg::ReplEntry { idx, epoch, op } => {
            out.push(TAG_REPL_ENTRY);
            put_u64(out, *idx);
            put_u64(out, *epoch);
            put_repl_op(out, op);
        }
        RtMsg::ReplAck { replica, idx } => {
            out.push(TAG_REPL_ACK);
            put_u64(out, *replica as u64);
            put_u64(out, *idx);
        }
        RtMsg::ReplHeartbeat {
            epoch,
            idx,
            replica,
            floor,
        } => {
            out.push(TAG_REPL_HEARTBEAT);
            put_u64(out, *epoch);
            put_u64(out, *idx);
            put_u64(out, *replica as u64);
            put_u64(out, *floor);
        }
        RtMsg::Candidacy {
            epoch,
            idx,
            replica,
        } => {
            out.push(TAG_CANDIDACY);
            put_u64(out, *epoch);
            put_u64(out, *idx);
            put_u64(out, *replica as u64);
        }
        RtMsg::ReplTick { gen } => {
            out.push(TAG_REPL_TICK);
            put_u64(out, *gen);
        }
        RtMsg::ReplCheck { gen } => {
            out.push(TAG_REPL_CHECK);
            put_u64(out, *gen);
        }
        RtMsg::ElectionTick { gen } => {
            out.push(TAG_ELECTION_TICK);
            put_u64(out, *gen);
        }
    }
}

/// Decodes one [`RtMsg`] frame, requiring the whole input to be consumed.
///
/// # Errors
///
/// [`WireError`] on any malformed, truncated, version-skewed, or
/// trailing-byte input; never panics.
pub fn decode_msg(buf: &[u8], spec: &IdSpec) -> Result<RtMsg, WireError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::Version(version));
    }
    let tag = r.u8()?;
    let msg = match tag {
        TAG_INTERVAL_TICK => RtMsg::IntervalTick { gen: r.u64()? },
        TAG_FLUSH => RtMsg::Flush,
        TAG_RESTART => RtMsg::Restart,
        TAG_JOIN_REQUEST => RtMsg::JoinRequest,
        TAG_JOIN_ACCEPTED => {
            let member = get_member(&mut r, spec)?;
            let table = get_table(&mut r, spec)?;
            let epoch = r.u64()?;
            let seq = r.u64()?;
            RtMsg::JoinAccepted {
                member,
                table: Box::new(table),
                epoch,
                seq,
            }
        }
        TAG_WELCOME => {
            let welcome = get_welcome(&mut r, spec)?;
            let epoch = r.u64()?;
            let next_interval_at = r.u64()?;
            RtMsg::Welcome {
                welcome,
                epoch,
                next_interval_at,
            }
        }
        TAG_NEW_MEMBER => {
            let record = get_member(&mut r, spec)?;
            let rtt = r.u64()?;
            let epoch = r.u64()?;
            let seq = r.u64()?;
            RtMsg::NewMember {
                record,
                rtt,
                epoch,
                seq,
            }
        }
        TAG_LEAVE_REQUEST => RtMsg::LeaveRequest,
        TAG_LEAVE_ACK => RtMsg::LeaveAck,
        TAG_MEMBER_LEFT => {
            let departed = get_user_id(&mut r, spec)?;
            let count = r.u32()? as usize;
            let mut replacements = Vec::with_capacity(count.min(1 << 12));
            for _ in 0..count {
                let m = get_member(&mut r, spec)?;
                let rtt = r.u64()?;
                replacements.push((m, rtt));
            }
            let epoch = r.u64()?;
            let seq = r.u64()?;
            RtMsg::MemberLeft {
                departed,
                replacements,
                epoch,
                seq,
            }
        }
        TAG_FAILURE_NOTICE => RtMsg::FailureNotice {
            failed: get_user_id(&mut r, spec)?,
        },
        TAG_FORWARD => {
            let level = usize::from(r.u8()?);
            let prefix = get_prefix_buf(&mut r)?;
            let message = get_interval_message(&mut r, spec)?;
            RtMsg::Forward {
                level,
                prefix,
                message: Arc::new(message),
            }
        }
        TAG_NACK => RtMsg::Nack { interval: r.u64()? },
        TAG_RECOVER => {
            let interval = r.u64()?;
            let sent_at = r.u64()?;
            let seq = r.u64()?;
            let count = r.u32()? as usize;
            let mut encryptions = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                encryptions.push(decode_encryption_from(&mut r, spec)?);
            }
            RtMsg::Recover {
                interval,
                encryptions,
                sent_at,
                seq,
            }
        }
        TAG_PING => RtMsg::Ping { token: r.u64()? },
        TAG_PONG => RtMsg::Pong { token: r.u64()? },
        TAG_SERVER_PING => RtMsg::ServerPing {
            id: get_user_id(&mut r, spec)?,
        },
        TAG_SERVER_PONG => {
            let epoch = r.u64()?;
            let seq = r.u64()?;
            let interval = r.u64()?;
            RtMsg::ServerPong {
                epoch,
                seq,
                interval,
            }
        }
        TAG_NOT_MEMBER => RtMsg::NotMember {
            id: get_user_id(&mut r, spec)?,
        },
        TAG_RESYNC_REQUEST => RtMsg::ResyncRequest {
            id: get_user_id(&mut r, spec)?,
        },
        TAG_RESYNC => {
            let member = get_member(&mut r, spec)?;
            let table = get_table(&mut r, spec)?;
            let welcome = get_welcome(&mut r, spec)?;
            let epoch = r.u64()?;
            let seq = r.u64()?;
            let next_interval_at = r.u64()?;
            RtMsg::Resync {
                member,
                table: Box::new(table),
                welcome,
                epoch,
                seq,
                next_interval_at,
            }
        }
        TAG_HEARTBEAT_TICK => RtMsg::HeartbeatTick { gen: r.u64()? },
        TAG_INTERVAL_CHECK => RtMsg::IntervalCheck { gen: r.u64()? },
        TAG_RETRY_TICK => RtMsg::RetryTick { gen: r.u64()? },
        TAG_REPL_ENTRY => {
            let idx = r.u64()?;
            let epoch = r.u64()?;
            let op = get_repl_op(&mut r, spec)?;
            RtMsg::ReplEntry { idx, epoch, op }
        }
        TAG_REPL_ACK => {
            let replica = r.u64()?;
            let replica =
                usize::try_from(replica).map_err(|_| WireError::BadValue("replica index"))?;
            let idx = r.u64()?;
            RtMsg::ReplAck { replica, idx }
        }
        TAG_REPL_HEARTBEAT => {
            let epoch = r.u64()?;
            let idx = r.u64()?;
            let replica = r.u64()?;
            let replica =
                usize::try_from(replica).map_err(|_| WireError::BadValue("replica index"))?;
            let floor = r.u64()?;
            RtMsg::ReplHeartbeat {
                epoch,
                idx,
                replica,
                floor,
            }
        }
        TAG_CANDIDACY => {
            let epoch = r.u64()?;
            let idx = r.u64()?;
            let replica = r.u64()?;
            let replica =
                usize::try_from(replica).map_err(|_| WireError::BadValue("replica index"))?;
            RtMsg::Candidacy {
                epoch,
                idx,
                replica,
            }
        }
        TAG_REPL_TICK => RtMsg::ReplTick { gen: r.u64()? },
        TAG_REPL_CHECK => RtMsg::ReplCheck { gen: r.u64()? },
        TAG_ELECTION_TICK => RtMsg::ElectionTick { gen: r.u64()? },
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(msg)
}

/// Encodes a `Forward` frame trimmed to the receiver's duty: only the
/// encryptions related to `prefix` ride the wire (the paper's
/// REKEY-MESSAGE-SPLIT), since every deeper forwarding duty addresses a
/// subset of them.
///
/// The simulator shares the full message by `Arc` — free — but a real
/// datagram pays per byte, and a full batch can exceed the 64 KiB UDP
/// ceiling; the related subset stays small (ancestors plus the prefix's
/// subtree).
pub fn encode_forward_split(
    level: usize,
    prefix: &PrefixBuf,
    message: &IntervalMessage,
    out: &mut Vec<u8>,
) {
    let related: Vec<_> = message
        .index
        .indices(prefix.as_slice())
        .map(|i| message.encryptions[i].clone())
        .collect();
    let trimmed = IntervalMessage {
        interval: message.interval,
        epoch: message.epoch,
        sent_at: message.sent_at,
        seq: message.seq,
        index: SplitIndex::build(&related),
        encryptions: related,
    };
    out.push(WIRE_VERSION);
    out.push(TAG_FORWARD);
    out.push(level as u8);
    put_prefix_buf(out, prefix);
    put_interval_message(out, &trimmed);
}
