//! Rekey transport over T-mesh with the `REKEY-MESSAGE-SPLIT` routine
//! (Fig. 5) and the cluster-heuristic delivery of Appendix B.
//!
//! The splitting rule: the copy composed for the `(s, j)`-primary neighbor
//! `w` contains encryption `e` iff `e.ID` is a prefix of `w.ID[0 : s]` or
//! `w.ID[0 : s]` is a prefix of `e.ID` — in this crate's indexing, iff
//! `e.id().is_related(&w.prefix(s + 1))`. Theorem 2 proves this keeps
//! exactly the encryptions needed by `w` or its downstream users.

use std::collections::VecDeque;

use rekey_crypto::Encryption;
use rekey_id::IdPrefix;
use rekey_net::{HostId, LinkLoad, Network};
use rekey_tmesh::forward::{server_next_hops, user_next_hops};
use rekey_tmesh::TmeshGroup;

/// Per-member and per-link bandwidth accounting of one rekey transport
/// session (the Fig. 13 metrics).
#[derive(Debug, Clone)]
pub struct BandwidthReport {
    /// Encryptions received per member (by member index).
    pub received: Vec<u64>,
    /// Encryptions forwarded per member.
    pub forwarded: Vec<u64>,
    /// Encryptions traversing each physical link (`None` on link-less
    /// substrates).
    pub link_load: Option<LinkLoad>,
    /// When collected: the exact encryption indices received per member
    /// (used to verify Theorem 2 / Corollary 1 in tests).
    pub received_sets: Option<Vec<Vec<usize>>>,
}

impl BandwidthReport {
    fn new(members: usize, net: &impl Network, detail: bool) -> BandwidthReport {
        BandwidthReport {
            received: vec![0; members],
            forwarded: vec![0; members],
            link_load: (net.link_count() > 0).then(|| LinkLoad::new(net.link_count())),
            received_sets: detail.then(|| vec![Vec::new(); members]),
        }
    }

    fn account_link(&mut self, net: &impl Network, from: HostId, to: HostId, units: u64) {
        if units == 0 {
            return;
        }
        if let Some(load) = self.link_load.as_mut() {
            if let Some(path) = net.path_links(from, to) {
                load.add_path(&path, units);
            }
        }
    }
}

/// Which encryptions of `message` belong in the copy composed for the
/// `(s, j)`-primary neighbor `w` — the loop body of `REKEY-MESSAGE-SPLIT`
/// (Fig. 5).
pub fn split_for_neighbor(message: &[usize], all: &[Encryption], w_prefix: &IdPrefix) -> Vec<usize> {
    message.iter().copied().filter(|&e| all[e].id().is_related(w_prefix)).collect()
}

/// Runs one rekey transport session over T-mesh (protocols `P1`/`P2` of
/// Table 2): the key server multicasts `message`; with `split` the
/// `REKEY-MESSAGE-SPLIT` routine composes a separate copy per next hop,
/// otherwise every copy carries the whole message.
///
/// Set `detail` to also record exactly which encryptions each member
/// received (for correctness tests).
pub fn tmesh_rekey_transport(
    group: &TmeshGroup,
    net: &impl Network,
    message: &[Encryption],
    split: bool,
    detail: bool,
) -> BandwidthReport {
    let n = group.members().len();
    let mut report = BandwidthReport::new(n, net, detail);
    let full: Vec<usize> = (0..message.len()).collect();
    let index = |id: &rekey_id::UserId| {
        group
            .members()
            .iter()
            .position(|m| &m.id == id)
            .expect("neighbor is a member")
    };

    let mut queue: VecDeque<(usize, usize, Vec<usize>)> = VecDeque::new();
    for hop in server_next_hops(group.server_table()) {
        let to = index(&hop.neighbor.member.id);
        let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
        let subset =
            if split { split_for_neighbor(&full, message, &prefix) } else { full.clone() };
        report.account_link(net, group.server_host(), group.members()[to].host, subset.len() as u64);
        queue.push_back((to, hop.forward_level, subset));
    }

    while let Some((member, level, msg)) = queue.pop_front() {
        report.received[member] += msg.len() as u64;
        if let Some(sets) = report.received_sets.as_mut() {
            sets[member].extend(msg.iter().copied());
        }
        for hop in user_next_hops(group.table(member), level) {
            let to = index(&hop.neighbor.member.id);
            let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
            let subset =
                if split { split_for_neighbor(&msg, message, &prefix) } else { msg.clone() };
            report.forwarded[member] += subset.len() as u64;
            report.account_link(
                net,
                group.members()[member].host,
                group.members()[to].host,
                subset.len() as u64,
            );
            queue.push_back((to, hop.forward_level, subset));
        }
    }
    report
}

/// Runs one rekey transport session under the cluster rekeying heuristic
/// (protocols `P3`/`P4` of Table 2, Appendix B):
///
/// * the multicast proceeds as usual for forwarding levels `< D − 1`, so
///   exactly one member per bottom cluster receives the message (the
///   cluster leader when tables use
///   [`rekey_table::PrimaryPolicy::EarliestJoinAtBottom`]);
/// * a non-leader receiver forwards the message to its cluster leader;
/// * the leader extracts the new group key and unicasts one
///   pairwise-encrypted copy (counted as one encryption) to each other
///   cluster member.
///
/// `is_leader(i)` tells whether member `i` currently leads its cluster and
/// `cluster_of(i)` lists the member indices of `i`'s cluster.
pub fn cluster_rekey_transport(
    group: &TmeshGroup,
    net: &impl Network,
    message: &[Encryption],
    split: bool,
    is_leader: &dyn Fn(usize) -> bool,
    cluster_of: &dyn Fn(usize) -> Vec<usize>,
) -> BandwidthReport {
    let n = group.members().len();
    let depth = group.spec().depth();
    let mut report = BandwidthReport::new(n, net, false);
    let full: Vec<usize> = (0..message.len()).collect();
    let index = |id: &rekey_id::UserId| {
        group
            .members()
            .iter()
            .position(|m| &m.id == id)
            .expect("neighbor is a member")
    };

    // The leader (or designated receiver) fans the group key out to its
    // cluster over pairwise keys.
    let deliver_to_cluster = |report: &mut BandwidthReport, receiver: usize| {
        let mut leader = receiver;
        if !is_leader(receiver) {
            // Forward the whole received copy to the cluster leader.
            let peers = cluster_of(receiver);
            if let Some(&l) = peers.iter().find(|&&m| is_leader(m)) {
                report.forwarded[receiver] += report.received[receiver];
                let units = report.received[receiver];
                report.account_link(
                    net,
                    group.members()[receiver].host,
                    group.members()[l].host,
                    units,
                );
                report.received[l] += units;
                leader = l;
            }
        }
        for peer in cluster_of(leader) {
            if peer == leader {
                continue;
            }
            // One pairwise-wrapped group key per member.
            if report.received[peer] == 0 {
                report.forwarded[leader] += 1;
                report.received[peer] += 1;
                report.account_link(
                    net,
                    group.members()[leader].host,
                    group.members()[peer].host,
                    1,
                );
            }
        }
    };

    let mut queue: VecDeque<(usize, usize, Vec<usize>)> = VecDeque::new();
    for hop in server_next_hops(group.server_table()) {
        let to = index(&hop.neighbor.member.id);
        let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
        let subset =
            if split { split_for_neighbor(&full, message, &prefix) } else { full.clone() };
        report.account_link(net, group.server_host(), group.members()[to].host, subset.len() as u64);
        queue.push_back((to, hop.forward_level, subset));
    }

    while let Some((member, level, msg)) = queue.pop_front() {
        report.received[member] += msg.len() as u64;
        // Forward only at levels < D − 1 (Appendix B): the bottom row is
        // replaced by the leader's pairwise unicasts.
        for hop in user_next_hops(group.table(member), level) {
            if hop.row + 1 >= depth {
                continue;
            }
            let to = index(&hop.neighbor.member.id);
            let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
            let subset =
                if split { split_for_neighbor(&msg, message, &prefix) } else { msg.clone() };
            report.forwarded[member] += subset.len() as u64;
            report.account_link(
                net,
                group.members()[member].host,
                group.members()[to].host,
                subset.len() as u64,
            );
            queue.push_back((to, hop.forward_level, subset));
        }
        deliver_to_cluster(&mut report, member);
    }
    report
}
