//! Rekey transport over T-mesh with the `REKEY-MESSAGE-SPLIT` routine
//! (Fig. 5) and the cluster-heuristic delivery of Appendix B.
//!
//! The splitting rule: the copy composed for the `(s, j)`-primary neighbor
//! `w` contains encryption `e` iff `e.ID` is a prefix of `w.ID[0 : s]` or
//! `w.ID[0 : s]` is a prefix of `e.ID` — in this crate's indexing, iff
//! `e.id().is_related(&w.prefix(s + 1))`. Theorem 2 proves this keeps
//! exactly the encryptions needed by `w` or its downstream users.
//!
//! The transports here run on the indexed core of [`crate::transport`]:
//! hop payloads are described by their split prefix and resolved against a
//! [`crate::SplitIndex`] built once per session, so each hop costs
//! O(D log M) binary searching instead of an O(M) scan, and no per-edge
//! subset vector is allocated. The former scan-per-hop implementation is
//! preserved verbatim in [`mod@reference`] as the correctness oracle and
//! benchmark baseline.

use rekey_crypto::Encryption;
use rekey_id::IdPrefix;
use rekey_net::Network;
use rekey_tmesh::forward::{server_next_hops, user_next_hops};
use rekey_tmesh::TmeshGroup;

use crate::transport::{BandwidthReport, RekeySession, TransportOptions};

/// Which encryptions of `message` belong in the copy composed for the
/// `(s, j)`-primary neighbor `w` — the loop body of `REKEY-MESSAGE-SPLIT`
/// (Fig. 5), as the paper states it.
///
/// This is the naive O(M) scan; the transports resolve the same set by
/// range extraction from a [`crate::SplitIndex`]. Kept public as the
/// oracle the equivalence tests and benchmarks compare against.
pub fn split_for_neighbor(
    message: &[usize],
    all: &[Encryption],
    w_prefix: &IdPrefix,
) -> Vec<usize> {
    message
        .iter()
        .copied()
        .filter(|&e| all[e].id().is_related(w_prefix))
        .collect()
}

/// Runs one rekey transport session over T-mesh (protocols `P1`/`P2` of
/// Table 2): the key server multicasts `message`; with
/// [`TransportOptions::split`] the `REKEY-MESSAGE-SPLIT` routine composes
/// a separate copy per next hop, otherwise every copy carries the whole
/// message. [`TransportOptions::detail`] also records exactly which
/// encryptions each member received (for correctness tests).
pub fn tmesh_rekey_transport(
    group: &TmeshGroup,
    net: &impl Network,
    message: &[Encryption],
    options: TransportOptions,
) -> BandwidthReport {
    let n = group.members().len();
    let mut report = BandwidthReport::new(n, net, options.detail);
    let mut session = RekeySession::new(group, message, options.split);

    for hop in server_next_hops(group.server_table()) {
        let to = session.members.of_hop(&hop);
        let payload = session.initial_payload(&hop);
        let units = session.payload_len(payload);
        report.account_link(net, group.server_host(), session.host(to), units);
        session
            .queue
            .push_back((to, hop.forward_level, payload, units));
    }

    while let Some((member, level, payload, units)) = session.queue.pop_front() {
        report.received[member] += units;
        if let Some(sets) = report.received_sets.as_mut() {
            session.payload_extend(payload, &mut sets[member]);
        }
        for hop in user_next_hops(group.table(member), level) {
            let to = session.members.of_hop(&hop);
            let next = session.payload_for(payload, &hop);
            let next_units = session.payload_len(next);
            report.forwarded[member] += next_units;
            report.account_link(net, session.host(member), session.host(to), next_units);
            session
                .queue
                .push_back((to, hop.forward_level, next, next_units));
        }
    }
    report
}

/// Runs one rekey transport session under the cluster rekeying heuristic
/// (protocols `P3`/`P4` of Table 2, Appendix B):
///
/// * the multicast proceeds as usual for forwarding levels `< D − 1`, so
///   exactly one member per bottom cluster receives the message (the
///   cluster leader when tables use
///   [`rekey_table::PrimaryPolicy::EarliestJoinAtBottom`]);
/// * a non-leader receiver forwards the message to its cluster leader;
/// * the leader extracts the new group key and unicasts one
///   pairwise-encrypted copy (counted as one encryption) to each other
///   cluster member.
///
/// `is_leader(i)` tells whether member `i` currently leads its cluster and
/// `cluster_of(i)` lists the member indices of `i`'s cluster. With
/// [`TransportOptions::detail`], `received_sets` records the multicast
/// copies only — the leader's pairwise unicasts carry the group key under
/// a pairwise key, not message encryptions.
pub fn cluster_rekey_transport(
    group: &TmeshGroup,
    net: &impl Network,
    message: &[Encryption],
    options: TransportOptions,
    is_leader: &dyn Fn(usize) -> bool,
    cluster_of: &dyn Fn(usize) -> Vec<usize>,
) -> BandwidthReport {
    let n = group.members().len();
    let depth = group.spec().depth();
    let mut report = BandwidthReport::new(n, net, options.detail);
    let mut session = RekeySession::new(group, message, options.split);

    // The leader (or designated receiver) fans the group key out to its
    // cluster over pairwise keys.
    let deliver_to_cluster = |report: &mut BandwidthReport, receiver: usize| {
        let mut leader = receiver;
        if !is_leader(receiver) {
            // Forward the whole received copy to the cluster leader.
            let peers = cluster_of(receiver);
            if let Some(&l) = peers.iter().find(|&&m| is_leader(m)) {
                report.forwarded[receiver] += report.received[receiver];
                let units = report.received[receiver];
                report.account_link(
                    net,
                    group.members()[receiver].host,
                    group.members()[l].host,
                    units,
                );
                report.received[l] += units;
                leader = l;
            }
        }
        for peer in cluster_of(leader) {
            if peer == leader {
                continue;
            }
            // One pairwise-wrapped group key per member.
            if report.received[peer] == 0 {
                report.forwarded[leader] += 1;
                report.received[peer] += 1;
                report.account_link(
                    net,
                    group.members()[leader].host,
                    group.members()[peer].host,
                    1,
                );
            }
        }
    };

    for hop in server_next_hops(group.server_table()) {
        let to = session.members.of_hop(&hop);
        let payload = session.initial_payload(&hop);
        let units = session.payload_len(payload);
        report.account_link(net, group.server_host(), session.host(to), units);
        session
            .queue
            .push_back((to, hop.forward_level, payload, units));
    }

    while let Some((member, level, payload, units)) = session.queue.pop_front() {
        report.received[member] += units;
        if let Some(sets) = report.received_sets.as_mut() {
            session.payload_extend(payload, &mut sets[member]);
        }
        // Forward only at levels < D − 1 (Appendix B): the bottom row is
        // replaced by the leader's pairwise unicasts.
        for hop in user_next_hops(group.table(member), level) {
            if hop.row + 1 >= depth {
                continue;
            }
            let to = session.members.of_hop(&hop);
            let next = session.payload_for(payload, &hop);
            let next_units = session.payload_len(next);
            report.forwarded[member] += next_units;
            report.account_link(net, session.host(member), session.host(to), next_units);
            session
                .queue
                .push_back((to, hop.forward_level, next, next_units));
        }
        deliver_to_cluster(&mut report, member);
    }
    report
}

/// The pre-index transport implementations: an O(N) member scan per hop
/// and an O(M) relatedness scan per composed copy, allocating one subset
/// vector per edge. Kept verbatim as the correctness oracle (the
/// equivalence proptests compare against these) and as the benchmark
/// baseline for the indexed core.
pub mod reference {
    use std::collections::VecDeque;

    use rekey_crypto::Encryption;
    use rekey_net::Network;
    use rekey_tmesh::forward::{server_next_hops, user_next_hops};
    use rekey_tmesh::TmeshGroup;

    use super::split_for_neighbor;
    use crate::transport::{BandwidthReport, TransportOptions};

    /// [`crate::tmesh_rekey_transport`] as originally implemented: scan
    /// per hop, subset vector per edge.
    pub fn tmesh_rekey_transport(
        group: &TmeshGroup,
        net: &impl Network,
        message: &[Encryption],
        options: TransportOptions,
    ) -> BandwidthReport {
        let TransportOptions { split, detail } = options;
        let n = group.members().len();
        let mut report = BandwidthReport::new(n, net, detail);
        let full: Vec<usize> = (0..message.len()).collect();
        let index = |id: &rekey_id::UserId| {
            group
                .members()
                .iter()
                .position(|m| &m.id == id)
                .expect("neighbor is a member")
        };

        let mut queue: VecDeque<(usize, usize, Vec<usize>)> = VecDeque::new();
        for hop in server_next_hops(group.server_table()) {
            let to = index(&hop.neighbor.member.id);
            let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
            let subset = if split {
                split_for_neighbor(&full, message, &prefix)
            } else {
                full.clone()
            };
            report.account_link(
                net,
                group.server_host(),
                group.members()[to].host,
                subset.len() as u64,
            );
            queue.push_back((to, hop.forward_level, subset));
        }

        while let Some((member, level, msg)) = queue.pop_front() {
            report.received[member] += msg.len() as u64;
            if let Some(sets) = report.received_sets.as_mut() {
                sets[member].extend(msg.iter().copied());
            }
            for hop in user_next_hops(group.table(member), level) {
                let to = index(&hop.neighbor.member.id);
                let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
                let subset = if split {
                    split_for_neighbor(&msg, message, &prefix)
                } else {
                    msg.clone()
                };
                report.forwarded[member] += subset.len() as u64;
                report.account_link(
                    net,
                    group.members()[member].host,
                    group.members()[to].host,
                    subset.len() as u64,
                );
                queue.push_back((to, hop.forward_level, subset));
            }
        }
        report
    }

    /// [`crate::cluster_rekey_transport`] as originally implemented.
    pub fn cluster_rekey_transport(
        group: &TmeshGroup,
        net: &impl Network,
        message: &[Encryption],
        options: TransportOptions,
        is_leader: &dyn Fn(usize) -> bool,
        cluster_of: &dyn Fn(usize) -> Vec<usize>,
    ) -> BandwidthReport {
        let TransportOptions { split, detail } = options;
        let n = group.members().len();
        let depth = group.spec().depth();
        let mut report = BandwidthReport::new(n, net, detail);
        let full: Vec<usize> = (0..message.len()).collect();
        let index = |id: &rekey_id::UserId| {
            group
                .members()
                .iter()
                .position(|m| &m.id == id)
                .expect("neighbor is a member")
        };

        let deliver_to_cluster = |report: &mut BandwidthReport, receiver: usize| {
            let mut leader = receiver;
            if !is_leader(receiver) {
                let peers = cluster_of(receiver);
                if let Some(&l) = peers.iter().find(|&&m| is_leader(m)) {
                    report.forwarded[receiver] += report.received[receiver];
                    let units = report.received[receiver];
                    report.account_link(
                        net,
                        group.members()[receiver].host,
                        group.members()[l].host,
                        units,
                    );
                    report.received[l] += units;
                    leader = l;
                }
            }
            for peer in cluster_of(leader) {
                if peer == leader {
                    continue;
                }
                if report.received[peer] == 0 {
                    report.forwarded[leader] += 1;
                    report.received[peer] += 1;
                    report.account_link(
                        net,
                        group.members()[leader].host,
                        group.members()[peer].host,
                        1,
                    );
                }
            }
        };

        let mut queue: VecDeque<(usize, usize, Vec<usize>)> = VecDeque::new();
        for hop in server_next_hops(group.server_table()) {
            let to = index(&hop.neighbor.member.id);
            let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
            let subset = if split {
                split_for_neighbor(&full, message, &prefix)
            } else {
                full.clone()
            };
            report.account_link(
                net,
                group.server_host(),
                group.members()[to].host,
                subset.len() as u64,
            );
            queue.push_back((to, hop.forward_level, subset));
        }

        while let Some((member, level, msg)) = queue.pop_front() {
            report.received[member] += msg.len() as u64;
            if let Some(sets) = report.received_sets.as_mut() {
                sets[member].extend(msg.iter().copied());
            }
            for hop in user_next_hops(group.table(member), level) {
                if hop.row + 1 >= depth {
                    continue;
                }
                let to = index(&hop.neighbor.member.id);
                let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
                let subset = if split {
                    split_for_neighbor(&msg, message, &prefix)
                } else {
                    msg.clone()
                };
                report.forwarded[member] += subset.len() as u64;
                report.account_link(
                    net,
                    group.members()[member].host,
                    group.members()[to].host,
                    subset.len() as u64,
                );
                queue.push_back((to, hop.forward_level, subset));
            }
            deliver_to_cluster(&mut report, member);
        }
        report
    }
}
