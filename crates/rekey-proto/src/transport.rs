//! The shared rekey-transport core: indexed routing and prefix-range
//! splitting.
//!
//! All three rekey transports ([`crate::tmesh_rekey_transport`],
//! [`crate::cluster_rekey_transport`], [`crate::lossy_rekey_transport`])
//! drive the same BFS over T-mesh forwarding hops. This module holds the
//! machinery they share:
//!
//! * [`MemberIndex`] — O(1) `UserId → member index` resolution per hop
//!   (backed by the map `TmeshGroup` builds once per session), replacing
//!   the former O(N) `members().position(..)` scan per edge;
//! * [`SplitIndex`] — the `REKEY-MESSAGE-SPLIT` routine (Fig. 5) as
//!   contiguous-range extraction. Encryption indices are sorted once by
//!   encryption ID; Theorem 2's relatedness predicate for a hop prefix `p`
//!   then decomposes into **one descendant range** (IDs with `p` as
//!   prefix — contiguous in the sorted order) plus **at most `D` ancestor
//!   runs** (exact matches of `p`'s proper prefixes), each found by binary
//!   search in O(log M). A hop's payload is described, counted, and
//!   iterated without scanning the message;
//! * [`PrefixBuf`] — a fixed-capacity digit buffer so queued hops carry
//!   their split prefix without a heap allocation per edge (the former
//!   implementation cloned a fresh `Vec<usize>` subset per edge).
//!
//! # Why range extraction is exact (not just an over-approximation)
//!
//! Along any forwarding chain the hop prefixes strictly refine: a member
//! `m` that received its copy for prefix `p₁ = m.ID[0..l]` forwards copies
//! for prefixes `p₂` with `p₁ ⊑ p₂` (rows `s ≥ l` of `m`'s table share
//! `m`'s first `s ≥ l` digits). For `p₁ ⊑ p₂`, every encryption related to
//! `p₂` is also related to `p₁`, so filtering the *received subset* by
//! `p₂` — what Fig. 5 literally does — equals filtering the *full
//! message* by `p₂`. By induction from the server (which starts with the
//! full message), the payload of every hop is exactly the global related
//! set of that hop's prefix, which is what [`SplitIndex`] extracts.

use std::collections::VecDeque;

use rekey_crypto::Encryption;
use rekey_id::{IdPrefix, UserId};
use rekey_metrics::Registry;
use rekey_net::{HostId, LinkLoad, Network};
use rekey_tmesh::forward::Hop;
use rekey_tmesh::TmeshGroup;

/// Hard cap on ID-tree depth supported by the allocation-free hop buffers.
/// The paper's spec is `D = 5`; every spec in this workspace is far below
/// this.
pub const MAX_DEPTH: usize = 12;

/// Options for a rekey transport session, replacing the former
/// `(split: bool, detail: bool)` positional flags.
///
/// ```
/// use rekey_proto::TransportOptions;
/// let opts = TransportOptions::split().with_detail();
/// assert!(opts.split && opts.detail);
/// assert!(!TransportOptions::flood().split);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportOptions {
    /// Run `REKEY-MESSAGE-SPLIT` (Fig. 5): each hop carries only the
    /// encryptions related to its subtree. Without it every copy carries
    /// the whole message.
    pub split: bool,
    /// Record exactly which encryption indices each member received
    /// (`BandwidthReport::received_sets`), for correctness checks.
    pub detail: bool,
}

impl TransportOptions {
    /// Splitting on, detail off: the paper's split protocols.
    pub fn split() -> TransportOptions {
        TransportOptions {
            split: true,
            detail: false,
        }
    }

    /// Splitting off (every copy carries the full message).
    pub fn flood() -> TransportOptions {
        TransportOptions {
            split: false,
            detail: false,
        }
    }

    /// Additionally record per-member received encryption index sets.
    pub fn with_detail(mut self) -> TransportOptions {
        self.detail = true;
        self
    }
}

/// O(1) member resolution for transport hops.
///
/// Wraps the `UserId → index` map that [`TmeshGroup`] builds once per
/// session, giving transports a named handle for the lookup that used to
/// be an O(N) scan per edge.
#[derive(Clone, Copy)]
pub struct MemberIndex<'a> {
    group: &'a TmeshGroup,
}

impl<'a> MemberIndex<'a> {
    pub fn new(group: &'a TmeshGroup) -> MemberIndex<'a> {
        MemberIndex { group }
    }

    /// The member index of `id`, if it is a session member.
    pub fn get(&self, id: &UserId) -> Option<usize> {
        self.group.member_index(id)
    }

    /// The member index of a hop's receiving neighbor.
    ///
    /// # Panics
    ///
    /// Panics if the neighbor is not a session member (tables and member
    /// list out of sync — a bug by construction of `TmeshGroup`).
    pub fn of_hop(&self, hop: &Hop<'_>) -> usize {
        self.get(&hop.neighbor.member.id)
            .expect("hop neighbor is a session member")
    }
}

/// A fixed-capacity prefix digit buffer: the split key a queued hop
/// carries, without per-edge heap allocation.
#[derive(Clone, Copy, Debug)]
pub struct PrefixBuf {
    len: u8,
    digits: [u16; MAX_DEPTH],
}

impl PrefixBuf {
    /// Captures `digits` (a prefix of some member ID).
    ///
    /// # Panics
    ///
    /// Panics if `digits.len() > MAX_DEPTH`.
    pub fn new(digits: &[u16]) -> PrefixBuf {
        assert!(
            digits.len() <= MAX_DEPTH,
            "ID-tree depth exceeds transport MAX_DEPTH"
        );
        let mut buf = PrefixBuf {
            len: digits.len() as u8,
            digits: [0; MAX_DEPTH],
        };
        buf.digits[..digits.len()].copy_from_slice(digits);
        buf
    }

    /// The `(row, ·)`-subtree prefix served by `hop`: the receiving
    /// neighbor's level-`row + 1` prefix (see [`Hop::prefix`]).
    pub fn of_hop(hop: &Hop<'_>) -> PrefixBuf {
        PrefixBuf::new(&hop.neighbor.member.id.digits()[..hop.row + 1])
    }

    pub fn as_slice(&self) -> &[u16] {
        &self.digits[..self.len as usize]
    }
}

/// The set of positions in a [`SplitIndex`]'s sorted order that are
/// related to one prefix: at most `MAX_DEPTH` ancestor runs plus one
/// descendant range, disjoint and in ascending order.
#[derive(Clone, Copy, Debug)]
pub struct RelatedRanges {
    count: usize,
    ranges: [(u32, u32); MAX_DEPTH + 1],
}

impl RelatedRanges {
    fn push(&mut self, lo: usize, hi: usize) {
        if lo < hi {
            self.ranges[self.count] = (lo as u32, hi as u32);
            self.count += 1;
        }
    }

    /// Total number of related encryptions.
    pub fn total(&self) -> usize {
        self.ranges[..self.count]
            .iter()
            .map(|&(lo, hi)| (hi - lo) as usize)
            .sum()
    }

    /// The ranges as `(start, end)` position pairs into the sorted order.
    pub fn as_slice(&self) -> &[(u32, u32)] {
        &self.ranges[..self.count]
    }
}

/// The prefix-range split index: the rekey message's encryption IDs
/// sorted once, answering "which encryptions are related to prefix `p`"
/// (Theorem 2 / Fig. 5) in O(D log M) per query instead of O(M).
///
/// The index owns a flattened copy of the digit strings (a few bytes per
/// entry), so it can be shared and outlive the message it was built from.
///
/// ```
/// # use rekey_proto::SplitIndex;
/// # use rekey_crypto::{Encryption, Key};
/// # use rekey_id::{IdPrefix, IdSpec};
/// # use rand::SeedableRng;
/// # let spec = IdSpec::new(3, 4).unwrap();
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// # let group_key = Key::random(IdPrefix::root(), &mut rng);
/// # let mut mk = |digits: Vec<u16>| {
/// #     let encrypting = Key::random(IdPrefix::new(&spec, digits).unwrap(), &mut rng);
/// #     Encryption::seal(&encrypting, &group_key, &mut rng)
/// # };
/// let message = vec![mk(vec![]), mk(vec![0]), mk(vec![0, 1]), mk(vec![2])];
/// let index = SplitIndex::build(&message);
/// // Related to [0]: the root (ancestor), [0] and [0,1] (descendants) — not [2].
/// let mut related: Vec<usize> = index.indices(&[0]).collect();
/// related.sort_unstable();
/// assert_eq!(related, vec![0, 1, 2]);
/// assert_eq!(index.count(&[0]), 3);
/// ```
pub struct SplitIndex {
    /// Digit strings of every entry, flattened; entry `i` occupies
    /// `digits[bounds[i]..bounds[i + 1]]`.
    digits: Vec<u16>,
    bounds: Vec<u32>,
    /// Entry indices sorted lexicographically by digit string.
    order: Vec<u32>,
}

impl SplitIndex {
    /// Indexes a rekey message by encryption ID: O(M log M), once per
    /// session.
    pub fn build(message: &[Encryption]) -> SplitIndex {
        SplitIndex::from_digit_strings(message.iter().map(|e| e.id().digits()))
    }

    /// Indexes a list of encryption IDs directly (for harnesses that
    /// model messages as ID lists, e.g. the concurrent-traffic simulator).
    pub fn from_ids(ids: &[IdPrefix]) -> SplitIndex {
        SplitIndex::from_digit_strings(ids.iter().map(|p| p.digits()))
    }

    /// Indexes arbitrary digit strings; entry `i` is the `i`-th yielded
    /// string.
    pub fn from_digit_strings<'a>(ids: impl Iterator<Item = &'a [u16]>) -> SplitIndex {
        let mut digits = Vec::new();
        let mut bounds = Vec::with_capacity(ids.size_hint().0 + 1);
        bounds.push(0u32);
        for id in ids {
            digits.extend_from_slice(id);
            bounds.push(digits.len() as u32);
        }
        let entries = bounds.len() - 1;
        assert!(
            entries < u32::MAX as usize,
            "message too large for split index"
        );
        let at = |e: u32| -> &[u16] {
            &digits[bounds[e as usize] as usize..bounds[e as usize + 1] as usize]
        };
        let mut order: Vec<u32> = (0..entries as u32).collect();
        order.sort_unstable_by(|&a, &b| at(a).cmp(at(b)));
        SplitIndex {
            digits,
            bounds,
            order,
        }
    }

    /// Number of indexed entries (the message size `M`).
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The digit string of entry `e`.
    fn id_at(&self, e: u32) -> &[u16] {
        &self.digits[self.bounds[e as usize] as usize..self.bounds[e as usize + 1] as usize]
    }

    /// The positions (in sorted order) of all entries related to
    /// `prefix`: `e.id ⊑ prefix` or `prefix ⊑ e.id`.
    pub fn related_ranges(&self, prefix: &[u16]) -> RelatedRanges {
        let mut out = RelatedRanges {
            count: 0,
            ranges: [(0, 0); MAX_DEPTH + 1],
        };
        // Proper ancestors of `prefix`: exact-match runs, each located by
        // two binary searches. They sort strictly before the descendant
        // block, and in chain order, so `out` stays sorted and disjoint.
        for k in 0..prefix.len() {
            let ancestor = &prefix[..k];
            let lo = self.order.partition_point(|&e| self.id_at(e) < ancestor);
            let hi = lo + self.order[lo..].partition_point(|&e| self.id_at(e) == ancestor);
            out.push(lo, hi);
        }
        // Descendants (prefix itself included): one contiguous block.
        let lo = self.order.partition_point(|&e| {
            rekey_id::subtree_cmp(prefix, self.id_at(e)) == std::cmp::Ordering::Less
        });
        let hi = lo
            + self.order[lo..].partition_point(|&e| {
                rekey_id::subtree_cmp(prefix, self.id_at(e)) == std::cmp::Ordering::Equal
            });
        out.push(lo, hi);
        out
    }

    /// How many entries are related to `prefix`: O(D log M).
    pub fn count(&self, prefix: &[u16]) -> usize {
        self.related_ranges(prefix).total()
    }

    /// The entry indices related to `prefix`, in sorted-by-ID order
    /// (ancestor chain first, then the descendant block).
    pub fn indices<'s>(&'s self, prefix: &[u16]) -> impl Iterator<Item = usize> + 's {
        let ranges = self.related_ranges(prefix);
        (0..ranges.count)
            .flat_map(move |r| ranges.ranges[r].0..ranges.ranges[r].1)
            .map(move |pos| self.order[pos as usize] as usize)
    }
}

/// Incrementally maintains a [`SplitIndex`] across rekey intervals.
///
/// `SplitIndex::build` re-sorts the whole message every interval —
/// O(M log M) ID comparisons even when consecutive messages overlap
/// heavily (under steady small churn most encryption IDs repeat from one
/// interval to the next: the upper tree levels change every batch). The
/// maintainer keeps the previous interval's *sorted* ID sequence and
/// turns the next message into its index by delta application:
///
/// 1. classify each new entry against the old sorted sequence (binary
///    search): **kept** (ID present last interval) or **fresh**;
/// 2. kept entries inherit their relative order from the old sequence —
///    an integer sort by old rank, no ID comparisons;
/// 3. only the fresh entries are comparison-sorted, then merged with the
///    kept run; old entries left unmatched are the removals and simply
///    drop out.
///
/// When the delta is large (mass joins, server restart) the incremental
/// path would do more work than a rebuild, so `advance` falls back to
/// [`SplitIndex::build`]; both paths are deterministic. The
/// [`SplitIndexMaintainer::stats`] counters expose which path ran, so
/// tests can pin that steady churn actually exercises the delta path.
///
/// ```
/// # use rekey_proto::SplitIndexMaintainer;
/// # use rekey_crypto::{Encryption, Key};
/// # use rekey_id::{IdPrefix, IdSpec};
/// # use rand::SeedableRng;
/// # let spec = IdSpec::new(2, 4).unwrap();
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// # let group_key = Key::random(IdPrefix::root(), &mut rng);
/// # let mut mk = |digits: Vec<u16>| {
/// #     let encrypting = Key::random(IdPrefix::new(&spec, digits).unwrap(), &mut rng);
/// #     Encryption::seal(&encrypting, &group_key, &mut rng)
/// # };
/// let mut maintainer = SplitIndexMaintainer::new();
/// let first = vec![mk(vec![]), mk(vec![0]), mk(vec![0, 1])];
/// let second = vec![mk(vec![]), mk(vec![0]), mk(vec![0, 2])]; // one ID changed
/// let _ = maintainer.advance(&first); // empty state: builds from scratch
/// let index = maintainer.advance(&second); // delta path: 1 fresh, 2 kept
/// assert_eq!(index.count(&[0, 2]), 3);
/// assert_eq!(maintainer.stats().incremental, 1);
/// ```
#[derive(Default)]
pub struct SplitIndexMaintainer {
    /// Previous interval's entry IDs, flattened **in sorted order**;
    /// sorted entry `r` occupies `sorted_digits[sorted_bounds[r]..sorted_bounds[r + 1]]`.
    sorted_digits: Vec<u16>,
    sorted_bounds: Vec<u32>,
    stats: SplitIndexStats,
}

/// Which paths a [`SplitIndexMaintainer`] has taken so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SplitIndexStats {
    /// Intervals indexed via delta application.
    pub incremental: u64,
    /// Intervals indexed via full rebuild (first interval, or delta too
    /// large to pay off).
    pub rebuilds: u64,
    /// Total entries that were carried over from the previous interval.
    pub kept: u64,
    /// Total entries that had to be comparison-sorted.
    pub fresh: u64,
}

impl SplitIndexMaintainer {
    pub fn new() -> SplitIndexMaintainer {
        SplitIndexMaintainer::default()
    }

    /// Path counters accumulated since construction.
    pub fn stats(&self) -> SplitIndexStats {
        self.stats
    }

    /// Number of entries in the retained previous interval.
    fn prev_len(&self) -> usize {
        self.sorted_bounds.len().saturating_sub(1)
    }

    fn prev_id(&self, rank: usize) -> &[u16] {
        &self.sorted_digits
            [self.sorted_bounds[rank] as usize..self.sorted_bounds[rank + 1] as usize]
    }

    /// Indexes the next interval's message, reusing last interval's sorted
    /// order where possible. Equivalent to `SplitIndex::build(message)` in
    /// the sets it answers; deterministic on both paths.
    pub fn advance(&mut self, message: &[Encryption]) -> SplitIndex {
        let index = self.advance_index(message);
        // Retain this interval's sorted ID sequence for the next delta.
        self.sorted_digits.clear();
        self.sorted_bounds.clear();
        self.sorted_bounds.push(0);
        for &e in &index.order {
            self.sorted_digits.extend_from_slice(index.id_at(e));
            self.sorted_bounds.push(self.sorted_digits.len() as u32);
        }
        index
    }

    fn advance_index(&mut self, message: &[Encryption]) -> SplitIndex {
        let m = message.len();
        let n = self.prev_len();
        // Nothing to delta against, or the message more than doubled:
        // rebuild outright.
        if n == 0 || m == 0 || m > n * 2 {
            self.stats.rebuilds += 1;
            return SplitIndex::build(message);
        }
        // Classify. `consumed` tracks multiplicity so duplicate IDs match
        // one old entry each.
        let mut consumed = vec![false; n];
        let mut kept: Vec<(u32, u32)> = Vec::with_capacity(m); // (old rank, entry)
        let mut fresh: Vec<u32> = Vec::new();
        for (pos, e) in message.iter().enumerate() {
            let id = e.id().digits();
            // Binary search for the first old rank with ID >= id.
            let (mut lo, mut hi) = (0usize, n);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.prev_id(mid) < id {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let mut r = lo;
            while r < n && self.prev_id(r) == id && consumed[r] {
                r += 1;
            }
            if r < n && self.prev_id(r) == id {
                consumed[r] = true;
                kept.push((r as u32, pos as u32));
            } else {
                fresh.push(pos as u32);
            }
        }
        // Delta too large: the classification already cost a scan, but
        // sorting everything fresh would repeat build's work — bail out.
        if fresh.len() * 2 > m {
            self.stats.rebuilds += 1;
            return SplitIndex::build(message);
        }
        self.stats.incremental += 1;
        self.stats.kept += kept.len() as u64;
        self.stats.fresh += fresh.len() as u64;

        // Flatten the new message's digit strings (entry order).
        let mut digits = Vec::new();
        let mut bounds = Vec::with_capacity(m + 1);
        bounds.push(0u32);
        for e in message {
            digits.extend_from_slice(e.id().digits());
            bounds.push(digits.len() as u32);
        }
        let id_of = |e: u32| -> &[u16] {
            &digits[bounds[e as usize] as usize..bounds[e as usize + 1] as usize]
        };

        // Kept entries in old-rank order are already ID-sorted (integer
        // sort, no string comparisons); only fresh needs comparisons.
        kept.sort_unstable();
        fresh.sort_unstable_by(|&a, &b| id_of(a).cmp(id_of(b)));

        // Merge the two sorted runs into the new order.
        let mut order = Vec::with_capacity(m);
        let (mut i, mut j) = (0, 0);
        while i < kept.len() && j < fresh.len() {
            if id_of(kept[i].1) <= id_of(fresh[j]) {
                order.push(kept[i].1);
                i += 1;
            } else {
                order.push(fresh[j]);
                j += 1;
            }
        }
        order.extend(kept[i..].iter().map(|&(_, e)| e));
        order.extend_from_slice(&fresh[j..]);

        SplitIndex {
            digits,
            bounds,
            order,
        }
    }
}

/// Per-member and per-link bandwidth accounting of one rekey transport
/// session (the Fig. 13 metrics).
#[derive(Debug, Clone)]
pub struct BandwidthReport {
    /// Encryptions received per member (by member index).
    pub received: Vec<u64>,
    /// Encryptions forwarded per member.
    pub forwarded: Vec<u64>,
    /// Encryptions traversing each physical link (`None` on link-less
    /// substrates).
    pub link_load: Option<LinkLoad>,
    /// When collected: the exact encryption indices received per member
    /// (used to verify Theorem 2 / Corollary 1 in tests).
    pub received_sets: Option<Vec<Vec<usize>>>,
}

impl BandwidthReport {
    pub(crate) fn new(members: usize, net: &impl Network, detail: bool) -> BandwidthReport {
        BandwidthReport {
            received: vec![0; members],
            forwarded: vec![0; members],
            link_load: (net.link_count() > 0).then(|| LinkLoad::new(net.link_count())),
            received_sets: detail.then(|| vec![Vec::new(); members]),
        }
    }

    pub(crate) fn account_link(
        &mut self,
        net: &impl Network,
        from: HostId,
        to: HostId,
        units: u64,
    ) {
        if units == 0 {
            return;
        }
        if let Some(load) = self.link_load.as_mut() {
            if let Some(path) = net.path_links(from, to) {
                load.add_path(&path, units);
            }
        }
    }

    /// Records the per-member received/forwarded distributions into
    /// `registry` as the `transport_received` and `transport_forwarded`
    /// histograms, so one-shot transport sessions share the runtime's
    /// snapshot pipeline.
    pub fn record_into(&self, registry: &Registry) {
        let received = registry.histogram("transport_received");
        for &units in &self.received {
            received.record(units);
        }
        let forwarded = registry.histogram("transport_forwarded");
        for &units in &self.forwarded {
            forwarded.record(units);
        }
    }
}

/// The payload of one queued overlay copy. Under splitting a payload is
/// fully described by the hop's prefix (see the module docs for why this
/// is exact); without splitting every copy is the full message.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Payload {
    Full,
    Related(PrefixBuf),
}

/// One queued overlay copy: receiving member, its forwarding level, the
/// payload descriptor, and the payload size in encryptions. No heap.
pub(crate) type QueuedCopy = (usize, usize, Payload, u64);

/// The state shared by one rekey transport session: the mesh, the member
/// index, the split index over the message, and the BFS queue.
pub(crate) struct RekeySession<'a> {
    pub group: &'a TmeshGroup,
    pub members: MemberIndex<'a>,
    pub index: SplitIndex,
    pub split: bool,
    pub queue: VecDeque<QueuedCopy>,
}

impl<'a> RekeySession<'a> {
    pub fn new(group: &'a TmeshGroup, message: &[Encryption], split: bool) -> RekeySession<'a> {
        assert!(
            group.spec().depth() <= MAX_DEPTH,
            "ID-tree depth exceeds transport MAX_DEPTH"
        );
        RekeySession {
            group,
            members: MemberIndex::new(group),
            index: SplitIndex::build(message),
            split,
            queue: VecDeque::new(),
        }
    }

    /// The payload composed for `hop`: the split extract for its subtree
    /// prefix, or the incoming payload unchanged without splitting.
    pub fn payload_for(&self, incoming: Payload, hop: &Hop<'_>) -> Payload {
        if self.split {
            Payload::Related(PrefixBuf::of_hop(hop))
        } else {
            incoming
        }
    }

    /// Number of encryptions a payload carries.
    pub fn payload_len(&self, payload: Payload) -> u64 {
        match payload {
            Payload::Full => self.index.len() as u64,
            Payload::Related(prefix) => self.index.count(prefix.as_slice()) as u64,
        }
    }

    /// Appends a payload's encryption indices to `out`.
    pub fn payload_extend(&self, payload: Payload, out: &mut Vec<usize>) {
        match payload {
            Payload::Full => out.extend(0..self.index.len()),
            Payload::Related(prefix) => out.extend(self.index.indices(prefix.as_slice())),
        }
    }

    /// The payload the server composes for an initial hop.
    pub fn initial_payload(&self, hop: &Hop<'_>) -> Payload {
        self.payload_for(Payload::Full, hop)
    }

    pub fn host(&self, member: usize) -> HostId {
        self.group.members()[member].host
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_id::{IdPrefix, IdSpec};

    fn encryptions(spec: &IdSpec, ids: &[&[u16]]) -> Vec<Encryption> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let group_key = Key::random(IdPrefix::root(), &mut rng);
        ids.iter()
            .map(|digits| {
                let encrypting =
                    Key::random(IdPrefix::new(spec, digits.to_vec()).unwrap(), &mut rng);
                Encryption::seal(&encrypting, &group_key, &mut rng)
            })
            .collect()
    }

    #[test]
    fn options_constructors() {
        assert_eq!(
            TransportOptions::split(),
            TransportOptions {
                split: true,
                detail: false
            }
        );
        assert_eq!(
            TransportOptions::flood(),
            TransportOptions {
                split: false,
                detail: false
            }
        );
        assert!(TransportOptions::flood().with_detail().detail);
        assert_eq!(TransportOptions::default(), TransportOptions::flood());
    }

    #[test]
    fn split_index_matches_naive_relatedness_exhaustively() {
        let spec = IdSpec::new(3, 3).unwrap();
        // All prefixes of a depth-3 base-3 space, some duplicated.
        let mut ids: Vec<Vec<u16>> = vec![vec![]];
        for a in 0..3u16 {
            ids.push(vec![a]);
            for b in 0..3u16 {
                ids.push(vec![a, b]);
                for c in 0..3u16 {
                    ids.push(vec![a, b, c]);
                }
            }
        }
        ids.extend_from_slice(&[vec![1], vec![1, 2], vec![]]); // duplicates
        let id_refs: Vec<&[u16]> = ids.iter().map(|v| v.as_slice()).collect();
        let message = encryptions(&spec, &id_refs);
        let index = SplitIndex::build(&message);

        for probe in &ids {
            let prefix = IdPrefix::new(&spec, probe.clone()).unwrap();
            let mut expected: Vec<usize> = (0..message.len())
                .filter(|&e| message[e].id().is_related(&prefix))
                .collect();
            let mut got: Vec<usize> = index.indices(probe).collect();
            assert_eq!(
                got.len(),
                index.count(probe),
                "count vs indices at {prefix}"
            );
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "related set mismatch at {prefix}");
        }
    }

    #[test]
    fn split_index_from_ids_matches_build() {
        let spec = IdSpec::new(2, 4).unwrap();
        let ids: Vec<IdPrefix> = [vec![], vec![0], vec![0, 1], vec![3], vec![3, 2]]
            .into_iter()
            .map(|d| IdPrefix::new(&spec, d).unwrap())
            .collect();
        let id_refs: Vec<&[u16]> = ids.iter().map(|p| p.digits()).collect();
        let message = encryptions(&spec, &id_refs);
        let from_encs = SplitIndex::build(&message);
        let from_ids = SplitIndex::from_ids(&ids);
        for probe in &ids {
            let mut a: Vec<usize> = from_encs.indices(probe.digits()).collect();
            let mut b: Vec<usize> = from_ids.indices(probe.digits()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "at {probe}");
        }
    }

    #[test]
    fn split_index_on_empty_message() {
        let index = SplitIndex::build(&[]);
        assert!(index.is_empty());
        assert_eq!(index.count(&[0, 1]), 0);
        assert_eq!(index.indices(&[]).count(), 0);
    }

    /// `SplitIndexMaintainer::advance` answers exactly the same related
    /// sets as a from-scratch `SplitIndex::build`, across interval
    /// sequences with heavy overlap, disjoint messages, growth spurts and
    /// empty messages — and steady churn takes the delta path.
    #[test]
    fn maintainer_advance_matches_build() {
        let spec = IdSpec::new(3, 3).unwrap();
        let intervals: Vec<Vec<Vec<u16>>> = vec![
            // steady churn: top levels repeat, one leaf path changes
            vec![vec![], vec![0], vec![1], vec![0, 0], vec![0, 0, 1]],
            vec![vec![], vec![0], vec![1], vec![0, 0], vec![0, 0, 2]],
            vec![vec![], vec![0], vec![1], vec![0, 1], vec![0, 1, 0]],
            // mass change: disjoint subtree
            vec![vec![], vec![2], vec![2, 0], vec![2, 0, 0], vec![2, 1]],
            // shrink, then empty, then regrow
            vec![vec![], vec![2]],
            vec![],
            vec![vec![], vec![0], vec![1], vec![2], vec![0, 0], vec![1, 1]],
            // duplicates (the generic digit-string contract)
            vec![vec![], vec![0], vec![0], vec![0, 0], vec![]],
        ];
        let mut maintainer = SplitIndexMaintainer::new();
        let mut probes: Vec<Vec<u16>> = vec![vec![]];
        for a in 0..3u16 {
            probes.push(vec![a]);
            for b in 0..3u16 {
                probes.push(vec![a, b]);
                probes.push(vec![a, b, 0]);
            }
        }
        for ids in &intervals {
            let id_refs: Vec<&[u16]> = ids.iter().map(|v| v.as_slice()).collect();
            let message = encryptions(&spec, &id_refs);
            let incremental = maintainer.advance(&message);
            let rebuilt = SplitIndex::build(&message);
            assert_eq!(incremental.len(), rebuilt.len());
            for probe in &probes {
                let mut a: Vec<usize> = incremental.indices(probe).collect();
                let mut b: Vec<usize> = rebuilt.indices(probe).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "related sets diverge at probe {probe:?}");
                assert_eq!(incremental.count(probe), rebuilt.count(probe));
            }
        }
        let stats = maintainer.stats();
        assert!(
            stats.incremental >= 2,
            "steady churn must take the delta path, got {stats:?}"
        );
        assert!(
            stats.rebuilds >= 2,
            "first interval and large deltas must rebuild, got {stats:?}"
        );
        assert!(stats.kept > stats.fresh, "overlap dominates: {stats:?}");
    }

    /// The delta path is deterministic: two maintainers fed the same
    /// interval sequence produce identical sorted orders.
    #[test]
    fn maintainer_is_deterministic() {
        let spec = IdSpec::new(2, 4).unwrap();
        let seq: Vec<Vec<Vec<u16>>> = vec![
            vec![vec![], vec![0], vec![0, 1], vec![3]],
            vec![vec![], vec![0], vec![0, 2], vec![3]],
            vec![vec![], vec![3], vec![3, 0], vec![0]],
        ];
        let mut a = SplitIndexMaintainer::new();
        let mut b = SplitIndexMaintainer::new();
        for ids in &seq {
            let id_refs: Vec<&[u16]> = ids.iter().map(|v| v.as_slice()).collect();
            let message = encryptions(&spec, &id_refs);
            let ia = a.advance(&message);
            let ib = b.advance(&message);
            assert_eq!(ia.order, ib.order);
            assert_eq!(ia.digits, ib.digits);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn prefix_buf_round_trips() {
        let buf = PrefixBuf::new(&[3, 1, 4]);
        assert_eq!(buf.as_slice(), &[3, 1, 4]);
        assert_eq!(PrefixBuf::new(&[]).as_slice(), &[] as &[u16]);
    }

    #[test]
    #[should_panic(expected = "MAX_DEPTH")]
    fn prefix_buf_rejects_overlong() {
        let digits = [0u16; MAX_DEPTH + 1];
        let _ = PrefixBuf::new(&digits);
    }
}
