//! Property tests for the ID assignment protocol (§3.1) and the group's
//! table maintenance, under arbitrary host placements and churn scripts.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use rekey_id::{IdSpec, UserId};
use rekey_net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use rekey_proto::{AssignParams, Group, GroupError};
use rekey_table::PrimaryPolicy;

fn net(seed: u64) -> MatrixNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever hosts join in whatever order: IDs stay unique, the ID tree
    /// mirrors membership, every ID has exactly D digits in range, and the
    /// tables stay K-consistent.
    #[test]
    fn joins_always_yield_unique_valid_ids(
        hosts in vec(0usize..200, 1..28),
        k in 1usize..4,
        seed in 0u64..100,
    ) {
        let network = net(seed);
        let spec = IdSpec::new(4, 16).unwrap();
        let mut group = Group::new(
            &spec,
            HostId(network.host_count() - 1),
            k,
            PrimaryPolicy::SmallestRtt,
            AssignParams::for_depth(4),
        );
        let mut used_hosts = std::collections::HashSet::new();
        for (t, &h) in hosts.iter().enumerate() {
            let h = h % (network.host_count() - 1);
            if !used_hosts.insert(h) {
                continue; // one member per host in this test
            }
            let out = group.join(HostId(h), &network, t as u64).unwrap();
            prop_assert_eq!(out.id.depth(), 4);
        }
        let mut ids: Vec<UserId> = group.members().iter().map(|m| m.id.clone()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "IDs must be unique");
        prop_assert_eq!(group.id_tree().user_count(), n);
        group.check().map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// Interleaved joins and leaves never break K-consistency, and leaving
    /// a non-member always errors instead of corrupting state.
    #[test]
    fn interleaved_churn_preserves_consistency(
        script in vec(any::<u8>(), 1..40),
        seed in 0u64..100,
    ) {
        let network = net(seed);
        let spec = IdSpec::new(3, 8).unwrap();
        let mut group = Group::new(
            &spec,
            HostId(network.host_count() - 1),
            2,
            PrimaryPolicy::SmallestRtt,
            AssignParams::for_depth(3),
        );
        let mut next_host = 0usize;
        for (t, &b) in script.iter().enumerate() {
            if b % 3 != 0 || group.is_empty() {
                if next_host < network.host_count() - 1 {
                    group.join(HostId(next_host), &network, t as u64).unwrap();
                    next_host += 1;
                }
            } else {
                let pick = usize::from(b) % group.len();
                let id = group.members()[pick].id.clone();
                group.leave(&id, &network).unwrap();
                // A second leave of the same ID must fail cleanly.
                prop_assert_eq!(
                    group.leave(&id, &network),
                    Err(GroupError::NotMember(id))
                );
            }
            group.check().map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
    }

    /// Centralized (GNP) assignment also yields unique IDs and consistent
    /// tables, for any landmark count.
    #[test]
    fn centralized_assignment_matches_invariants(
        joins in 2usize..20,
        landmarks in 1usize..24,
        seed in 0u64..100,
    ) {
        let network = net(seed);
        let spec = IdSpec::new(3, 8).unwrap();
        let coords = rekey_net::CoordinateSystem::spread(network.host_count() - 1, landmarks);
        let mut group = Group::new(
            &spec,
            HostId(network.host_count() - 1),
            2,
            PrimaryPolicy::SmallestRtt,
            AssignParams::for_depth(3),
        );
        for h in 0..joins {
            let out = group.join_centralized(HostId(h), &network, &coords, h as u64).unwrap();
            prop_assert_eq!(out.stats.queries, 0, "centralized joins query nobody");
        }
        let mut ids: Vec<UserId> = group.members().iter().map(|m| m.id.clone()).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), joins);
        group.check().map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}
