//! Tests of the message-level distributed join protocol (§3.1–§3.2 on the
//! event simulator): sequential and concurrent joins, ID quality,
//! consistency of the constructed tables, and message-cost behaviour.

use rand::{Rng, SeedableRng};
use rekey_id::IdSpec;
use rekey_net::{MatrixNetwork, Network, PlanetLabParams};
use rekey_proto::distributed::{run_distributed_joins, DistributedJoinRun};
use rekey_proto::AssignParams;
use rekey_table::check_consistency;

fn net(seed: u64) -> MatrixNetwork {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut rng)
}

fn run(seed: u64, joins: usize, spacing: u64, jitter: u64) -> (MatrixNetwork, DistributedJoinRun) {
    let network = net(seed);
    let spec = IdSpec::new(4, 16).unwrap();
    let params = AssignParams::for_depth(4);
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed ^ 0xD157);
    let times: Vec<u64> = (0..joins)
        .map(|i| i as u64 * spacing + rng.gen_range(0..=jitter))
        .collect();
    let outcome = run_distributed_joins(&spec, &params, 2, &network, joins, &times);
    (network, outcome)
}

/// Sequential joins (well separated in time): everyone completes, IDs are
/// unique, and the constructed neighbor tables are K-consistent.
#[test]
fn sequential_joins_build_consistent_tables() {
    let (_, out) = run(1, 30, 10_000_000, 0); // 10 s apart: strictly sequential
    assert_eq!(out.members.len(), 30, "every join completes");
    let mut ids: Vec<_> = out.members.iter().map(|m| m.id.clone()).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 30, "IDs are unique");
    let spec = IdSpec::new(4, 16).unwrap();
    check_consistency(&spec, &out.members, &out.tables, 1)
        .expect("distributed tables are 1-consistent");
}

/// Concurrent joins (overlapping in time): completion and uniqueness still
/// hold; tables are 1-consistent thanks to the server's delta records.
#[test]
fn concurrent_joins_still_converge() {
    let (_, out) = run(2, 30, 3_000, 5_000); // heavy overlap
    assert_eq!(out.members.len(), 30);
    let mut ids: Vec<_> = out.members.iter().map(|m| m.id.clone()).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 30);
    let spec = IdSpec::new(4, 16).unwrap();
    check_consistency(&spec, &out.members, &out.tables, 1)
        .expect("1-consistency under concurrent joins");
}

/// The protocol is topology-aware: hosts with a small gateway RTT end up
/// sharing longer ID prefixes than far-apart hosts, on average.
#[test]
fn nearby_hosts_share_longer_prefixes() {
    let (network, out) = run(3, 60, 5_000_000, 0);
    // Classify pairs relative to the observed RTT distribution (bottom vs
    // top quartile) so the test does not depend on absolute latencies of
    // one particular synthetic topology draw.
    let mut pairs = Vec::new();
    for a in 0..out.members.len() {
        for b in (a + 1)..out.members.len() {
            let (ma, mb) = (&out.members[a], &out.members[b]);
            let rtt = network.gateway_rtt(ma.host, mb.host);
            let shared = ma.id.common_prefix_len(&mb.id) as f64;
            pairs.push((rtt, shared));
        }
    }
    pairs.sort_by_key(|&(rtt, _)| rtt);
    let quarter = pairs.len() / 4;
    let near: Vec<f64> = pairs[..quarter].iter().map(|&(_, s)| s).collect();
    let far: Vec<f64> = pairs[pairs.len() - quarter..]
        .iter()
        .map(|&(_, s)| s)
        .collect();
    assert!(
        !near.is_empty() && !far.is_empty(),
        "both classes populated"
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&near) > avg(&far) + 0.25,
        "near pairs must share clearly longer prefixes: {:.2} vs {:.2}",
        avg(&near),
        avg(&far)
    );
}

/// Join message cost stays sub-linear in the group size (the §3.1.4
/// O(P · D · N^{1/D}) analysis): quadrupling N must not quadruple the mean
/// per-join message count of the *last* joins.
#[test]
fn join_cost_scales_sublinearly() {
    let cost = |n: usize| -> f64 {
        let (_, out) = run(100 + n as u64, n, 2_000_000, 0);
        let tail = &out.stats[n - n / 4..];
        tail.iter()
            .map(|s| (s.queries + s.pings) as f64)
            .sum::<f64>()
            / tail.len() as f64
    };
    let c40 = cost(40);
    let c160 = cost(160);
    assert!(
        c160 < c40 * 4.0,
        "per-join messages must grow sublinearly: {c40:.1} → {c160:.1}"
    );
}

/// First joiner gets the all-zero ID, as in §3.1.
#[test]
fn first_join_gets_zero_id() {
    let (_, out) = run(4, 1, 1, 0);
    assert_eq!(out.members[0].id.digits(), &[0, 0, 0, 0]);
    assert_eq!(out.stats[0].queries, 0, "first join probes nobody");
}

/// Elapsed join time is dominated by probing round trips and stays within
/// a small multiple of the network diameter.
#[test]
fn join_latency_is_bounded() {
    let (network, out) = run(5, 20, 5_000_000, 0);
    let mut max_rtt = 0;
    for a in 0..20 {
        for b in 0..20 {
            max_rtt = max_rtt.max(network.rtt(rekey_net::HostId(a), rekey_net::HostId(b)));
        }
    }
    for s in &out.stats[1..] {
        assert!(s.elapsed > 0);
        // Each join is a handful of sequential RTT-bounded phases; 40
        // diameters is a generous envelope that still catches pathologies.
        assert!(
            s.elapsed < 40 * max_rtt,
            "join took {} µs with diameter {} µs",
            s.elapsed,
            max_rtt
        );
    }
}

/// Leaves (and failure notifications, which share the repair path): after
/// a batch of joins, some members leave; the survivors' tables must drop
/// the departed records and stay 1-consistent thanks to the server's
/// replacement candidates.
#[test]
fn leaves_repair_survivor_tables() {
    use rekey_proto::distributed::run_distributed_session;
    let network = net(7);
    let spec = IdSpec::new(4, 16).unwrap();
    let params = AssignParams::for_depth(4);
    let joins = 30usize;
    let times: Vec<u64> = (0..joins).map(|i| i as u64 * 5_000_000).collect();
    // Nodes 3, 9, 21 leave well after every join has completed.
    let leaves: Vec<(usize, u64)> = [3usize, 9, 21]
        .iter()
        .map(|&n| (n, 400_000_000 + n as u64))
        .collect();
    let out = run_distributed_session(&spec, &params, 2, &network, joins, &times, &leaves);
    assert_eq!(out.members.len(), joins - leaves.len(), "survivors only");
    let mut ids: Vec<_> = out.members.iter().map(|m| m.id.clone()).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), out.members.len());
    check_consistency(&spec, &out.members, &out.tables, 1)
        .expect("1-consistency after distributed leaves");
    // No survivor still references a departed host's record.
    for (m, t) in out.members.iter().zip(&out.tables) {
        for r in t.iter_all() {
            assert!(
                ids.contains(&r.member.id),
                "{} still references departed {}",
                m.id,
                r.member.id
            );
        }
    }
}

/// Regression for the formerly documented stale-table window: a member
/// that departs while another member's join is still in flight. The
/// joiner's bootstrap snapshot predates the departure and the repair
/// broadcast predates the joiner's registration, so before the server
/// kept a departure log the joiner's table retained a ghost record of
/// the departed member forever. The log replay in `IdAssigned` closes
/// the window at every overlap offset.
#[test]
fn leave_during_inflight_join_leaves_no_ghost_records() {
    use rekey_proto::distributed::run_distributed_session;
    let network = net(11);
    let spec = IdSpec::new(4, 16).unwrap();
    let params = AssignParams::for_depth(4);
    let joins = 25usize;
    // 24 members join sequentially; the last join starts at 200 s.
    let late_start = 200_000_000u64;
    let mut times: Vec<u64> = (0..24).map(|i| i as u64 * 5_000_000).collect();
    times.push(late_start);
    // Sweep the overlap: departures land from 10 ms to 2 s into the
    // in-flight join, covering every protocol phase of the joiner.
    for offset in [10_000u64, 50_000, 100_000, 500_000, 1_000_000, 2_000_000] {
        let leaves: Vec<(usize, u64)> =
            vec![(5, late_start + offset), (17, late_start + offset / 2)];
        let out = run_distributed_session(&spec, &params, 2, &network, joins, &times, &leaves);
        assert_eq!(
            out.members.len(),
            joins - 2,
            "offset {offset}: survivors only"
        );
        let ids: Vec<_> = out.members.iter().map(|m| m.id.clone()).collect();
        for (m, t) in out.members.iter().zip(&out.tables) {
            for r in t.iter_all() {
                assert!(
                    ids.contains(&r.member.id),
                    "offset {offset}: {} holds ghost record of departed {}",
                    m.id,
                    r.member.id
                );
            }
        }
        check_consistency(&spec, &out.members, &out.tables, 1)
            .unwrap_or_else(|v| panic!("offset {offset}: {v}"));
    }
}
