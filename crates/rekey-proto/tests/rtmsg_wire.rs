//! Property tests for the versioned `RtMsg` wire codec.
//!
//! Round trip: `encode(decode(encode(m))) == encode(m)` for messages over
//! arbitrary (valid) protocol values — encoding is injective on every
//! wire-visible field, so byte-stable re-encoding pins structural
//! identity without requiring `PartialEq` on `RtMsg`. Robustness: the
//! decoder is a total function — truncated frames, corrupt bytes, and
//! version skew return errors, never panic.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::{Encryption, Key};
use rekey_id::{IdPrefix, IdSpec, UserId};
use rekey_net::HostId;
use rekey_proto::runtime::wire::{decode_msg, encode_msg, WireError, WIRE_VERSION};
use rekey_proto::runtime::{IntervalMessage, ReplOp, RtMsg};
use rekey_proto::transport::PrefixBuf;
use rekey_proto::{SplitIndex, WelcomePacket};
use rekey_table::{Member, NeighborRecord, NeighborTable, PrimaryPolicy};

const DEPTH: usize = 3;
const BASE: u16 = 8;

fn spec() -> IdSpec {
    IdSpec::new(DEPTH, BASE).unwrap()
}

fn user_id(digits: &[u16]) -> UserId {
    UserId::new(&spec(), digits.to_vec()).unwrap()
}

fn digit() -> impl Strategy<Value = u16> {
    0..BASE
}

fn arb_user_id() -> impl Strategy<Value = UserId> {
    vec(digit(), DEPTH).prop_map(|d| user_id(&d))
}

fn arb_member() -> impl Strategy<Value = Member> {
    (arb_user_id(), 0usize..10_000, 0u64..1 << 40).prop_map(|(id, host, joined_at)| Member {
        id,
        host: HostId(host),
        joined_at,
    })
}

fn arb_table() -> impl Strategy<Value = Box<NeighborTable>> {
    (
        arb_user_id(),
        1usize..5,
        proptest::bool::weighted(0.5),
        vec((arb_member(), 1u64..1 << 30), 0..12),
    )
        .prop_map(|(owner, k, bottom, records)| {
            let policy = if bottom {
                PrimaryPolicy::EarliestJoinAtBottom
            } else {
                PrimaryPolicy::SmallestRtt
            };
            let mut table = NeighborTable::new(&spec(), owner, k, policy);
            for (member, rtt) in records {
                table.insert(NeighborRecord { member, rtt });
            }
            Box::new(table)
        })
}

fn key_for(digits: &[u16], seed: u64) -> Key {
    let mut rng = StdRng::seed_from_u64(seed);
    Key::random(IdPrefix::new(&spec(), digits.to_vec()).unwrap(), &mut rng)
}

fn arb_key() -> impl Strategy<Value = Key> {
    (vec(digit(), 0..=DEPTH), 0u64..1_000).prop_map(|(digits, seed)| key_for(&digits, seed))
}

fn arb_welcome() -> impl Strategy<Value = WelcomePacket> {
    (arb_user_id(), vec(arb_key(), 0..6), 0u64..1 << 30)
        .prop_map(|(id, keys, interval)| WelcomePacket { id, keys, interval })
}

fn arb_encryption() -> impl Strategy<Value = Encryption> {
    (
        vec(digit(), 0..=DEPTH),
        vec(digit(), 0..=DEPTH),
        0u64..1_000,
    )
        .prop_map(|(enc, tgt, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let enc_key = key_for(&enc, seed ^ 1);
            let tgt_key = key_for(&tgt, seed ^ 2);
            Encryption::seal(&enc_key, &tgt_key, &mut rng)
        })
}

fn arb_interval_message() -> impl Strategy<Value = Arc<IntervalMessage>> {
    (
        1u64..1 << 30,
        0u64..16,
        0u64..1 << 40,
        0u64..1 << 20,
        vec(arb_encryption(), 0..10),
    )
        .prop_map(|(interval, epoch, sent_at, seq, encryptions)| {
            Arc::new(IntervalMessage {
                interval,
                epoch,
                sent_at,
                seq,
                index: SplitIndex::build(&encryptions),
                encryptions,
            })
        })
}

fn arb_prefix_buf() -> impl Strategy<Value = PrefixBuf> {
    vec(digit(), 0..=DEPTH).prop_map(|d| PrefixBuf::new(&d))
}

fn arb_repl_op() -> impl Strategy<Value = ReplOp> {
    prop_oneof![
        (0usize..10_000, 0u64..1 << 40).prop_map(|(host, at)| ReplOp::Join {
            host: HostId(host),
            at,
        }),
        arb_user_id().prop_map(|id| ReplOp::Leave { id }),
        (0u64..1 << 40).prop_map(|sent_at| ReplOp::Interval { sent_at }),
    ]
}

fn arb_msg() -> impl Strategy<Value = RtMsg> {
    let repl = prop_oneof![
        (1u64..1 << 40, 0u64..16, arb_repl_op()).prop_map(|(idx, epoch, op)| RtMsg::ReplEntry {
            idx,
            epoch,
            op
        }),
        (0usize..64, 0u64..1 << 40).prop_map(|(replica, idx)| RtMsg::ReplAck { replica, idx }),
        (0u64..16, 0u64..1 << 40, 0usize..64, 0u64..1 << 40).prop_map(
            |(epoch, idx, replica, floor)| RtMsg::ReplHeartbeat {
                epoch,
                idx,
                replica,
                floor,
            }
        ),
        (0u64..16, 0u64..1 << 40, 0usize..64).prop_map(|(epoch, idx, replica)| RtMsg::Candidacy {
            epoch,
            idx,
            replica
        }),
        (0u64..1 << 40).prop_map(|gen| RtMsg::ReplTick { gen }),
        (0u64..1 << 40).prop_map(|gen| RtMsg::ReplCheck { gen }),
        (0u64..1 << 40).prop_map(|gen| RtMsg::ElectionTick { gen }),
    ];
    let small = prop_oneof![
        (0u64..1 << 40).prop_map(|gen| RtMsg::IntervalTick { gen }),
        Just(RtMsg::Flush),
        Just(RtMsg::Restart),
        Just(RtMsg::JoinRequest),
        Just(RtMsg::LeaveRequest),
        Just(RtMsg::LeaveAck),
        (0u64..1 << 40).prop_map(|interval| RtMsg::Nack { interval }),
        (0u64..1 << 40).prop_map(|token| RtMsg::Ping { token }),
        (0u64..1 << 40).prop_map(|token| RtMsg::Pong { token }),
        arb_user_id().prop_map(|id| RtMsg::ServerPing { id }),
        (0u64..16, 0u64..1 << 30, 0u64..1 << 30).prop_map(|(epoch, seq, interval)| {
            RtMsg::ServerPong {
                epoch,
                seq,
                interval,
            }
        }),
        arb_user_id().prop_map(|id| RtMsg::NotMember { id }),
        arb_user_id().prop_map(|id| RtMsg::ResyncRequest { id }),
        arb_user_id().prop_map(|failed| RtMsg::FailureNotice { failed }),
        (0u64..1 << 40).prop_map(|gen| RtMsg::HeartbeatTick { gen }),
        (0u64..1 << 40).prop_map(|gen| RtMsg::IntervalCheck { gen }),
        (0u64..1 << 40).prop_map(|gen| RtMsg::RetryTick { gen }),
    ];
    let compound = prop_oneof![
        (arb_member(), arb_table(), 0u64..16, 0u64..1 << 30).prop_map(
            |(member, table, epoch, seq)| RtMsg::JoinAccepted {
                member,
                table,
                epoch,
                seq,
            }
        ),
        (arb_welcome(), 0u64..16, 0u64..1 << 40).prop_map(|(welcome, epoch, next_interval_at)| {
            RtMsg::Welcome {
                welcome,
                epoch,
                next_interval_at,
            }
        }),
        (arb_member(), 0u64..1 << 30, 0u64..16, 0u64..1 << 30).prop_map(
            |(record, rtt, epoch, seq)| RtMsg::NewMember {
                record,
                rtt,
                epoch,
                seq,
            }
        ),
        (
            arb_user_id(),
            vec((arb_member(), 0u64..1 << 30), 0..6),
            0u64..16,
            0u64..1 << 30
        )
            .prop_map(|(departed, replacements, epoch, seq)| RtMsg::MemberLeft {
                departed,
                replacements,
                epoch,
                seq,
            }),
        (0usize..DEPTH, arb_prefix_buf(), arb_interval_message()).prop_map(
            |(level, prefix, message)| RtMsg::Forward {
                level,
                prefix,
                message,
            }
        ),
        (
            0u64..1 << 40,
            vec(arb_encryption(), 0..8),
            0u64..1 << 40,
            0u64..1 << 20,
        )
            .prop_map(|(interval, encryptions, sent_at, seq)| RtMsg::Recover {
                interval,
                encryptions,
                sent_at,
                seq,
            }),
        (
            arb_member(),
            arb_table(),
            arb_welcome(),
            0u64..16,
            0u64..1 << 30,
            0u64..1 << 40
        )
            .prop_map(|(member, table, welcome, epoch, seq, next_interval_at)| {
                RtMsg::Resync {
                    member,
                    table,
                    welcome,
                    epoch,
                    seq,
                    next_interval_at,
                }
            }),
    ];
    prop_oneof![small, compound, repl]
}

fn encode(msg: &RtMsg) -> Vec<u8> {
    let mut out = Vec::new();
    encode_msg(msg, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// encode → decode → encode is byte-stable: decoding reconstructs
    /// every wire-visible field exactly.
    #[test]
    fn round_trip_is_byte_stable(msg in arb_msg()) {
        let bytes = encode(&msg);
        prop_assert_eq!(bytes[0], WIRE_VERSION);
        let decoded = decode_msg(&bytes, &spec()).expect("valid frame decodes");
        prop_assert_eq!(encode(&decoded), bytes);
    }

    /// Every strict prefix of a valid frame is rejected — no partial
    /// message ever parses, and no truncation panics.
    #[test]
    fn truncated_frames_error(msg in arb_msg(), cut in 0usize..10_000) {
        let bytes = encode(&msg);
        let cut = cut % bytes.len();
        prop_assert!(decode_msg(&bytes[..cut], &spec()).is_err());
    }

    /// Single-byte corruption either decodes to *some* well-formed
    /// message or errors — it never panics. (A flipped length byte, key
    /// byte, or count is indistinguishable from hostile input.)
    #[test]
    fn corrupt_frames_never_panic(msg in arb_msg(), at in 0usize..10_000, bit in 0u8..8) {
        let mut bytes = encode(&msg);
        let at = at % bytes.len();
        bytes[at] ^= 1 << bit;
        let _ = decode_msg(&bytes, &spec());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in vec(any::<u8>(), 0..512)) {
        let _ = decode_msg(&bytes, &spec());
    }

    /// Version skew is detected from the first byte.
    #[test]
    fn version_skew_is_rejected(msg in arb_msg(), v in 0u8..=255) {
        prop_assume!(v != WIRE_VERSION);
        let mut bytes = encode(&msg);
        bytes[0] = v;
        prop_assert!(matches!(
            decode_msg(&bytes, &spec()),
            Err(WireError::Version(found)) if found == v
        ));
    }
}
