//! One implementation, two drivers: the event-driven [`GroupRuntime`] and
//! the synchronous [`GroupServer`] facade must execute the *same* protocol.
//! On a churn-free trace (joins only, no loss, no crashes) with the same
//! [`GroupConfig`], both drivers must end with identical membership,
//! identical key trees, and identical per-member path keys — and the
//! runtime's member agents must agree with the synchronous agents fed by
//! the oracle delivery.

use rekey_id::{IdSpec, UserId};
use rekey_net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use rekey_proto::{ChurnEvent, GroupConfig, GroupRuntime, GroupServer, RuntimeConfig, UserAgent};
use rekey_sim::seeded_rng;

const SEC: u64 = 1_000_000;

fn small_net() -> MatrixNetwork {
    let mut rng = seeded_rng(0xE0);
    MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng)
}

fn config() -> GroupConfig {
    GroupConfig::for_spec(&IdSpec::new(3, 8).unwrap())
        .k(2)
        .seed(99)
}

/// Joins grouped per rekey interval: hosts 0..6 join during interval 1,
/// hosts 6..10 during interval 2, and two intervals run empty. The trace
/// spaces joins ≥ 500 ms apart so overlay delays cannot reorder their
/// arrival at the server relative to the synchronous call order.
#[test]
fn runtime_and_synchronous_driver_build_identical_key_trees() {
    // Event-driven run.
    let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net());
    let trace: Vec<ChurnEvent> = (0..6)
        .map(|i| ChurnEvent::join(SEC + i * 800_000))
        .chain((0..4).map(|i| ChurnEvent::join(11 * SEC + i * 800_000)))
        .collect();
    rt.run_trace(&trace);
    rt.finish(41 * SEC); // ticks at 10, 20, 30, 40 s
    assert_eq!(rt.server().interval(), 4);

    // Synchronous run: same config, same network, same join grouping.
    // Each interval's outcome is delivered over the oracle transport
    // immediately, mirroring what the runtime multicasts per tick.
    let net = small_net();
    let mut server = config().build(HostId(net.host_count() - 1));
    let mut agents: Vec<UserAgent> = Vec::new();
    let deliver_interval = |server: &GroupServer,
                            agents: &mut Vec<UserAgent>,
                            outcome: &rekey_proto::IntervalOutcome| {
        for welcome in &outcome.welcomes {
            agents.push(UserAgent::from_welcome(welcome.clone()));
        }
        let delivery = server.deliver(&net, outcome);
        for agent in agents.iter_mut() {
            if agent.interval() < outcome.interval {
                let i = server
                    .group()
                    .index_of(agent.id())
                    .expect("agent is a member");
                agent.handle_rekey(outcome.interval, delivery.member(i));
            }
        }
    };
    for h in 0..6 {
        server
            .request_join(HostId(h), &net, SEC + h as u64)
            .unwrap();
    }
    for _ in 0..4 {
        let outcome = server.end_interval();
        deliver_interval(&server, &mut agents, &outcome);
        if server.interval() == 1 {
            for h in 6..10 {
                server
                    .request_join(HostId(h), &net, 11 * SEC + h as u64)
                    .unwrap();
            }
        }
    }
    assert_eq!(server.interval(), rt.server().interval());

    // Same membership: IDs and hosts match exactly.
    let sync_members: Vec<(UserId, HostId)> = server
        .group()
        .members()
        .iter()
        .map(|m| (m.id.clone(), m.host))
        .collect();
    let rt_members: Vec<(UserId, HostId)> = rt
        .group()
        .members()
        .iter()
        .map(|m| (m.id.clone(), m.host))
        .collect();
    assert_eq!(sync_members, rt_members, "drivers assigned different IDs");

    // Same key tree: group key and every member's path keys agree.
    assert_eq!(
        server.tree().group_key(),
        rt.server().tree().group_key(),
        "drivers derived different group keys"
    );
    for (id, _) in &sync_members {
        assert_eq!(
            server
                .tree()
                .user_path_keys(id)
                .cloned()
                .collect::<Vec<_>>(),
            rt.server()
                .tree()
                .user_path_keys(id)
                .cloned()
                .collect::<Vec<_>>(),
            "path keys diverge for {id}"
        );
    }

    // The runtime's agents ended at the same state the synchronous
    // delivery produced: welcome + per-interval related sets.
    for agent in &agents {
        let handle = agent_handle(&rt, agent.id());
        let rt_agent = rt.agent(handle).expect("runtime member was welcomed");
        assert_eq!(rt_agent.interval(), agent.interval());
        assert_eq!(
            rt_agent.group_key(),
            agent.group_key(),
            "agent key state diverges for {}",
            agent.id()
        );
    }
}

/// Maps a member ID back to its runtime join handle via the oracle.
fn agent_handle(rt: &GroupRuntime<MatrixNetwork>, id: &UserId) -> usize {
    let host = rt
        .group()
        .members()
        .iter()
        .find(|m| &m.id == id)
        .expect("member is in the oracle")
        .host;
    host.0
}
