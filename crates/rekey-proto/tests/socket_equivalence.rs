//! Sim-vs-socket equivalence: the same churn trace pushed through the
//! deterministic sharded simulation and through the real-socket UDP
//! driver must end in the same place — identical membership roster,
//! identical server key tree (exact key material, version for version),
//! every survivor holding the current group key, and K-consistent
//! tables on both sides.
//!
//! This works because key material never touches the clock: the
//! server's key RNG is seeded by `GroupConfig::seed`, and with the same
//! bootstrap roster and one identical leave per rekey interval, both
//! engines draw the same keys in the same order. Tree equality is
//! therefore an exact check, not a statistical one — real UDP jitter
//! may reorder packets and trigger NACK recovery, but recovery only
//! retransmits existing key material and cannot perturb the draw
//! sequence.

use rekey_id::IdSpec;
use rekey_net::GridNetwork;
use rekey_proto::{Driver, GroupConfig, RuntimeConfig, ShardedGroupRuntime, UdpGroupDriver};

const MEMBERS: usize = 24;
/// 150 ms per rekey interval: sim time for the sharded engine, real
/// wall-clock for the socket driver.
const PERIOD: u64 = 150_000;

fn net() -> GridNetwork {
    GridNetwork::new(MEMBERS + 1, 1_000, 100)
}

fn group() -> GroupConfig {
    GroupConfig::for_spec(&IdSpec::new(3, 4).unwrap())
        .k(2)
        .seed(11)
}

fn config() -> RuntimeConfig {
    RuntimeConfig::builder()
        .rekey_period(PERIOD)
        .nack_grace(PERIOD / 4)
        .heartbeat_period(1 << 40)
        .retry_base(PERIOD / 8)
        .seed(5)
        .build()
}

/// The shared churn trace, expressed purely through the [`Driver`]
/// boundary: one leave per interval keeps the per-interval batch a
/// single-element set, so batch application order — the one thing real
/// packet arrival could perturb — cannot differ between engines.
fn drive<D: Driver>(rt: &mut D) {
    rt.leave(4);
    assert!(rt.run_to_interval(2), "interval 2 stalled");
    rt.leave(17);
    assert!(rt.run_to_interval(3), "interval 3 stalled");
    assert!(rt.finish_run(), "flush failed to converge");
    rt.verify_consistency()
        .expect("tables K-consistent after finish");
}

#[test]
fn sim_and_socket_drivers_agree() {
    let window = net().min_one_way();
    let mut sim = ShardedGroupRuntime::bootstrapped(group(), config(), net(), MEMBERS, 4, window)
        .expect("sharded bootstrap");
    let mut udp =
        UdpGroupDriver::bootstrapped(group(), config(), net(), MEMBERS, 4).expect("udp bootstrap");

    drive(&mut sim);
    drive(&mut udp);

    let (a, b) = (sim.server_fsm(), udp.server_fsm());
    assert_eq!(a.interval(), b.interval(), "interval counts diverge");

    // Identical rosters: same user IDs on the same hosts, in the same
    // join order. (joined_at is compared too — both engines deal the
    // bootstrap at their respective time zero.)
    assert_eq!(a.group().members(), b.group().members(), "rosters diverge");

    // Identical key trees: for every member, the full u-node-to-root
    // key path matches key for key. Together with the shared roster
    // this pins every live node of both trees.
    let gk = a.tree().group_key().expect("non-empty group");
    assert_eq!(Some(gk), b.tree().group_key(), "group keys diverge");
    for m in a.group().members() {
        let ka: Vec<_> = a.tree().user_path_keys(&m.id).collect();
        let kb: Vec<_> = b.tree().user_path_keys(&m.id).collect();
        assert_eq!(ka, kb, "path keys diverge for {:?}", m.id);
    }

    // Per-member agreement: the same handles departed, and every
    // survivor in both engines holds the (shared) current group key.
    assert_eq!(sim.member_count(), udp.member_count());
    for h in 0..sim.member_count() {
        match (sim.agent_of(h), udp.agent_of(h)) {
            (Some(x), Some(y)) => {
                assert_eq!(x.group_key(), Some(gk), "sim member {h} is stale");
                assert_eq!(y.group_key(), Some(gk), "udp member {h} is stale");
            }
            (None, None) => assert!(h == 4 || h == 17, "unexpected departure {h}"),
            (x, y) => panic!(
                "member {h} liveness diverges: sim {} udp {}",
                x.is_some(),
                y.is_some()
            ),
        }
    }
}
