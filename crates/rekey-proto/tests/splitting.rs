//! Verification of the rekey message splitting scheme against the paper's
//! correctness results:
//!
//! * **Theorem 2 / Corollary 1** — under splitting, every user receives an
//!   encryption exactly once iff the encryption is needed by the user or by
//!   at least one of its downstream users;
//! * end-to-end key delivery — after absorbing exactly the encryptions the
//!   split transport delivered, every surviving user holds the server's
//!   current path keys (real ChaCha20 unwrapping).

use std::collections::{BTreeSet, HashMap};

use rand::SeedableRng;
use rekey_id::{IdSpec, UserId};
use rekey_keytree::{KeyRing, ModifiedKeyTree, RekeyArena};
use rekey_net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use rekey_proto::{tmesh_rekey_transport, AssignParams, Group, TransportOptions};
use rekey_table::PrimaryPolicy;
use rekey_tmesh::{Source, TmeshGroup};

struct Fixture {
    net: MatrixNetwork,
    group: Group,
    tree: ModifiedKeyTree,
    rings: HashMap<UserId, KeyRing>,
    rng: rand::rngs::StdRng,
    arena: RekeyArena,
}

fn fixture(spec: IdSpec, n: usize, seed: u64) -> Fixture {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut rng);
    let mut group = Group::new(
        &spec,
        HostId(net.host_count() - 1),
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::for_depth(spec.depth()),
    );
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = RekeyArena::new();
    let mut rings = HashMap::new();
    for h in 0..n {
        let out = group.join(HostId(h), &net, h as u64).unwrap();
        tree.batch_rekey(std::slice::from_ref(&out.id), &[], &mut rng, &mut arena)
            .unwrap();
        rings.insert(
            out.id.clone(),
            KeyRing::new(out.id.clone(), tree.user_path_keys(&out.id)),
        );
    }
    // Bring every ring up to date with the joins that happened after it.
    for (id, ring) in rings.iter_mut() {
        *ring = KeyRing::new(id.clone(), tree.user_path_keys(id));
    }
    Fixture {
        net,
        group,
        tree,
        rings,
        rng,
        arena,
    }
}

/// Downstream sets per member, derived from an actual multicast session.
fn downstream_sets(mesh: &TmeshGroup, net: &MatrixNetwork) -> Vec<BTreeSet<usize>> {
    let outcome = mesh.multicast(net, Source::Server);
    assert!(outcome.exactly_once().is_ok());
    let n = mesh.members().len();
    // children[i] = members that received their copy from i.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    for (i, _) in mesh.members().iter().enumerate() {
        match outcome.first_delivery(i).unwrap().from {
            Source::Server => roots.push(i),
            Source::User(p) => children[p].push(i),
        }
    }
    let mut sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    fn fill(i: usize, children: &[Vec<usize>], sets: &mut [BTreeSet<usize>]) {
        for &c in &children[i] {
            fill(c, children, sets);
            let sub = sets[c].clone();
            sets[i].insert(c);
            sets[i].extend(sub);
        }
    }
    for &r in &roots {
        fill(r, &children, &mut sets);
    }
    sets
}

#[test]
fn corollary1_split_delivers_exactly_the_needed_encryptions() {
    let spec = IdSpec::new(3, 8).unwrap();
    let mut fx = fixture(spec, 40, 11);

    // One churn interval: 6 joins, 6 leaves.
    let leaves: Vec<UserId> = fx
        .group
        .members()
        .iter()
        .step_by(7)
        .take(6)
        .map(|m| m.id.clone())
        .collect();
    for l in &leaves {
        fx.group.leave(l, &fx.net).unwrap();
    }
    let mut joins = Vec::new();
    for h in 100..106 {
        joins.push(
            fx.group
                .join(HostId(h), &fx.net, 1000 + h as u64)
                .unwrap()
                .id,
        );
    }
    let out = fx
        .tree
        .batch_rekey(&joins, &leaves, &mut fx.rng, &mut fx.arena)
        .unwrap();
    assert!(out.cost() > 0);

    let mesh = fx.group.tmesh();
    let report = tmesh_rekey_transport(
        &mesh,
        &fx.net,
        out.encryptions(),
        TransportOptions::split().with_detail(),
    );
    let received = report.received_sets.as_ref().unwrap();
    let downstream = downstream_sets(&mesh, &fx.net);

    for (i, member) in mesh.members().iter().enumerate() {
        // Exactly once: no duplicates among received encryptions.
        let set: BTreeSet<usize> = received[i].iter().copied().collect();
        assert_eq!(
            set.len(),
            received[i].len(),
            "duplicate encryption at {}",
            member.id
        );

        // Expected set per Corollary 1: encryptions needed by the member or
        // by at least one downstream user.
        let mut expected = BTreeSet::new();
        for (e, enc) in out.encryptions().iter().enumerate() {
            let needed_by_me = enc.id().is_prefix_of_id(&member.id);
            let needed_downstream = downstream[i]
                .iter()
                .any(|&w| enc.id().is_prefix_of_id(&mesh.members()[w].id));
            if needed_by_me || needed_downstream {
                expected.insert(e);
            }
        }
        assert_eq!(set, expected, "Corollary 1 violated at {}", member.id);
    }
}

#[test]
fn split_end_to_end_key_delivery_over_churn_intervals() {
    let spec = IdSpec::new(3, 8).unwrap();
    let mut fx = fixture(spec, 30, 22);
    let mut next_host = 200;

    for interval in 0..5 {
        // Churn: 3 leaves, 4 joins per interval.
        let leaves: Vec<UserId> = fx
            .group
            .members()
            .iter()
            .skip(interval)
            .step_by(9)
            .take(3)
            .map(|m| m.id.clone())
            .collect();
        for l in &leaves {
            fx.group.leave(l, &fx.net).unwrap();
            fx.rings.remove(l);
        }
        let mut joins = Vec::new();
        for _ in 0..4 {
            let out = fx
                .group
                .join(HostId(next_host), &fx.net, next_host as u64)
                .unwrap();
            next_host += 1;
            joins.push(out.id);
        }
        let out = fx
            .tree
            .batch_rekey(&joins, &leaves, &mut fx.rng, &mut fx.arena)
            .unwrap();
        for j in &joins {
            fx.rings.insert(
                j.clone(),
                KeyRing::new(j.clone(), fx.tree.user_path_keys(j)),
            );
        }

        // Deliver with splitting; members absorb only what they received.
        let mesh = fx.group.tmesh();
        let report = tmesh_rekey_transport(
            &mesh,
            &fx.net,
            out.encryptions(),
            TransportOptions::split().with_detail(),
        );
        let received = report.received_sets.as_ref().unwrap();
        for (i, member) in mesh.members().iter().enumerate() {
            let ring = fx.rings.get_mut(&member.id).expect("member has a ring");
            ring.absorb(received[i].iter().map(|&e| &out.encryptions()[e]));
            assert!(
                ring.matches_path(&spec, fx.tree.user_path_keys(&member.id)),
                "interval {interval}: {} lacks current keys",
                member.id
            );
        }
    }
}

#[test]
fn splitting_reduces_received_bandwidth_massively() {
    let spec = IdSpec::new(3, 8).unwrap();
    let mut fx = fixture(spec, 50, 33);
    let leaves: Vec<UserId> = fx
        .group
        .members()
        .iter()
        .step_by(4)
        .take(10)
        .map(|m| m.id.clone())
        .collect();
    for l in &leaves {
        fx.group.leave(l, &fx.net).unwrap();
    }
    let out = fx
        .tree
        .batch_rekey(&[], &leaves, &mut fx.rng, &mut fx.arena)
        .unwrap();
    let mesh = fx.group.tmesh();
    let with = tmesh_rekey_transport(&mesh, &fx.net, out.encryptions(), TransportOptions::split());
    let without =
        tmesh_rekey_transport(&mesh, &fx.net, out.encryptions(), TransportOptions::flood());
    let total_with: u64 = with.received.iter().sum();
    let total_without: u64 = without.received.iter().sum();
    assert!(
        total_with * 2 < total_without,
        "splitting must at least halve total received encryptions: {total_with} vs {total_without}"
    );
    // Without splitting every member receives the full message.
    assert!(without.received.iter().all(|&r| r == out.cost() as u64));
}
