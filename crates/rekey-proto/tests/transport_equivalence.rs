//! Property tests pinning the indexed transport core to the paper's naive
//! formulation.
//!
//! The rewritten transports resolve each hop's payload by contiguous-range
//! extraction from a sorted [`SplitIndex`] (Theorem 2: the related set of a
//! prefix is one descendant block plus its ancestor chain). The original
//! implementations — an `is_related` scan per hop, a subset vector per
//! edge — are preserved verbatim in [`rekey_proto::split::reference`] as
//! the oracle. These properties assert exact agreement between the two
//! across random ID spaces, memberships, and batch rekeys.

use std::collections::BTreeSet;

use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use rekey_id::{IdPrefix, IdSpec, UserId};
use rekey_keytree::{ModifiedKeyTree, RekeyArena};
use rekey_net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use rekey_proto::split::reference;
use rekey_proto::{
    cluster_rekey_transport, tmesh_rekey_transport, AssignParams, Group, SplitIndex,
    TransportOptions,
};
use rekey_table::PrimaryPolicy;

fn net(seed: u64) -> MatrixNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut rng)
}

/// Builds a group plus key tree from a churn script: every entry joins a
/// fresh host, and entries divisible by three also evict a member chosen
/// by the entry value, so the final membership and the rekeyed batch both
/// vary with the script.
fn churned_group(
    spec: &IdSpec,
    script: &[u8],
    seed: u64,
) -> (
    MatrixNetwork,
    Group,
    ModifiedKeyTree,
    Vec<rekey_crypto::Encryption>,
) {
    let network = net(seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut group = Group::new(
        spec,
        HostId(network.host_count() - 1),
        2,
        PrimaryPolicy::SmallestRtt,
        AssignParams::for_depth(spec.depth()),
    );
    let mut tree = ModifiedKeyTree::new(spec);
    let mut next_host = 0usize;
    let mut joins: Vec<UserId> = Vec::new();
    let mut leaves: Vec<UserId> = Vec::new();
    for (t, &b) in script.iter().enumerate() {
        if next_host < network.host_count() - 1 {
            if let Ok(out) = group.join(HostId(next_host), &network, t as u64) {
                joins.push(out.id);
                next_host += 1;
            }
        }
        if b % 3 == 0 && group.len() > 1 {
            let victim = group.members()[usize::from(b) % group.len()].id.clone();
            group.leave(&victim, &network).unwrap();
            if let Some(pos) = joins.iter().position(|j| j == &victim) {
                // Joined and left within the batch: cancels.
                joins.remove(pos);
            } else {
                leaves.push(victim);
            }
        }
    }
    let mut arena = RekeyArena::new();
    let mut out = tree
        .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
        .unwrap();
    let encryptions = out.take_encryptions();
    (network, group, tree, encryptions)
}

fn received_sets(report: &rekey_proto::BandwidthReport) -> Vec<BTreeSet<usize>> {
    report
        .received_sets
        .as_ref()
        .expect("detail requested")
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The indexed T-mesh transport delivers exactly the same encryption
    /// set to every member as the paper's per-hop scan, and accounts the
    /// same bandwidth — for both splitting and flooding, across random ID
    /// spaces, memberships, and rekey batches.
    #[test]
    fn indexed_tmesh_transport_matches_reference(
        depth in 2usize..5,
        base in 2u16..7,
        script in vec(any::<u8>(), 1..32),
        seed in 0u64..50,
    ) {
        let spec = IdSpec::new(depth, base).unwrap();
        let (network, group, _tree, encryptions) = churned_group(&spec, &script, seed);
        prop_assume!(!group.is_empty());
        let mesh = group.tmesh();
        for options in [TransportOptions::split(), TransportOptions::flood()] {
            let detailed = options.with_detail();
            let indexed = tmesh_rekey_transport(&mesh, &network, &encryptions, detailed);
            let naive = reference::tmesh_rekey_transport(&mesh, &network, &encryptions, detailed);
            prop_assert_eq!(&indexed.received, &naive.received, "split={}", options.split);
            prop_assert_eq!(&indexed.forwarded, &naive.forwarded, "split={}", options.split);
            // Exact per-member SET equality: the indexed extraction emits
            // indices in sorted-by-ID order, not message order, so compare
            // as sets.
            prop_assert_eq!(
                received_sets(&indexed),
                received_sets(&naive),
                "split={}",
                options.split
            );
        }
    }

    /// Same agreement for the cluster transport (Appendix B heuristic):
    /// gated multicast copies plus the leaders' pairwise unicasts.
    #[test]
    fn indexed_cluster_transport_matches_reference(
        depth in 2usize..4,
        base in 2u16..6,
        script in vec(any::<u8>(), 1..24),
        seed in 0u64..50,
    ) {
        let spec = IdSpec::new(depth, base).unwrap();
        let (network, group, _tree, encryptions) = churned_group(&spec, &script, seed);
        prop_assume!(!group.is_empty());
        let mesh = group.tmesh();
        let member_count = mesh.members().len();
        let leader_prefixes: Vec<IdPrefix> =
            mesh.members().iter().map(|m| m.id.prefix(spec.depth() - 1)).collect();
        let is_leader = |i: usize| {
            leader_prefixes
                .iter()
                .position(|p| *p == leader_prefixes[i])
                .expect("own prefix present")
                == i
        };
        let cluster_of = |i: usize| -> Vec<usize> {
            (0..member_count).filter(|&j| leader_prefixes[j] == leader_prefixes[i]).collect()
        };
        for options in [TransportOptions::split(), TransportOptions::flood()] {
            let indexed = cluster_rekey_transport(
                &mesh, &network, &encryptions, options, &is_leader, &cluster_of,
            );
            let naive = reference::cluster_rekey_transport(
                &mesh, &network, &encryptions, options, &is_leader, &cluster_of,
            );
            prop_assert_eq!(&indexed.received, &naive.received, "split={}", options.split);
            prop_assert_eq!(&indexed.forwarded, &naive.forwarded, "split={}", options.split);
        }
    }

    /// The split index answers arbitrary prefix queries with exactly the
    /// `is_related` filter's set, on random multisets of encryption IDs.
    #[test]
    fn split_index_matches_is_related_scan(
        depth in 1usize..5,
        base in 2u16..8,
        picks in vec(any::<u32>(), 0..48),
        query in any::<u32>(),
    ) {
        let spec = IdSpec::new(depth, base).unwrap();
        // Decode each u32 into a prefix of arbitrary length <= depth.
        let decode = |mut v: u32| -> IdPrefix {
            let len = (v as usize % depth) + 1;
            let mut digits = Vec::with_capacity(len);
            for _ in 0..len {
                digits.push((v % u32::from(base)) as u16);
                v /= u32::from(base);
            }
            IdPrefix::new(&spec, digits).unwrap()
        };
        let ids: Vec<IdPrefix> = picks.iter().map(|&v| decode(v)).collect();
        let index = SplitIndex::from_ids(&ids);
        let w = decode(query);
        let expected: BTreeSet<usize> =
            (0..ids.len()).filter(|&e| ids[e].is_related(&w)).collect();
        let got: BTreeSet<usize> = index.indices(w.digits()).collect();
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(index.count(w.digits()), expected.len());
    }
}
