//! An actor-style message-passing simulation on top of the scheduler.

use crate::event::{Scheduler, SimTime};

/// Identifier of a node (actor) in a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A protocol participant driven by message deliveries.
pub trait Node {
    /// The message type exchanged between nodes.
    type Msg;

    /// Called when a message addressed to this node is delivered. Outgoing
    /// messages and timers are issued through `ctx`.
    fn receive(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);
}

/// The side effects a node may produce while handling a message.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: NodeId,
    outbox: &'a mut Vec<Outgoing<M>>,
}

/// One queued side effect of a [`Node::receive`] call. Public so external
/// executors (e.g. a sharded runtime driving nodes outside
/// [`Simulation`]) can route the outbox themselves.
#[derive(Debug)]
pub enum Outgoing<M> {
    /// Deliver after the network delay between the two nodes.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// Deliver after an explicit delay (timers, processing time).
    After {
        /// Destination node (`self` for timers).
        to: NodeId,
        /// Relative delay in simulated µs.
        delay: SimTime,
        /// The message.
        msg: M,
    },
}

impl<'a, M> Ctx<'a, M> {
    /// Creates a context for an external executor that drives [`Node`]s
    /// outside a [`Simulation`] (a sharded event loop, a test harness).
    /// Side effects accumulate in `outbox`; the caller routes them.
    pub fn external(now: SimTime, self_id: NodeId, outbox: &'a mut Vec<Outgoing<M>>) -> Ctx<'a, M> {
        Ctx {
            now,
            self_id,
            outbox,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node currently handling a message.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to`; it will be delivered after the simulation's
    /// network delay between this node and `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Outgoing::Send { to, msg });
    }

    /// Schedules `msg` for `to` after an explicit `delay`, bypassing the
    /// network delay function (use `to = self_id()` for local timers).
    pub fn send_after(&mut self, to: NodeId, delay: SimTime, msg: M) {
        self.outbox.push(Outgoing::After { to, delay, msg });
    }
}

#[derive(Debug)]
struct Delivery<M> {
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// A deterministic message-passing simulation over a set of nodes.
///
/// Network delays come from the `delay` function (typically backed by a
/// `rekey_net::Network`). The simulation counts delivered messages, which
/// the protocols use for communication-cost accounting (e.g. the paper's
/// `O(P · D · N^{1/D})` join cost analysis, §3.1.4).
/// Per-sender egress serialisation hook: `(sender, msg) -> transmission
/// time` (see [`Simulation::set_egress`]).
type EgressFn<M> = Box<dyn FnMut(NodeId, &M) -> SimTime>;

/// Message-drop hook: `(now, sender, receiver, msg) -> drop?` (see
/// [`Simulation::with_loss`]). The timestamp lets time-windowed fault
/// models (partitions) decide per message.
type DropFn<M> = Box<dyn FnMut(SimTime, NodeId, NodeId, &M) -> bool>;

/// Extra-delay hook: `(now, sender, receiver, msg) -> extra delay` added
/// on top of the network delay (see [`Simulation::with_jitter`]).
type JitterFn<M> = Box<dyn FnMut(SimTime, NodeId, NodeId, &M) -> SimTime>;

/// Downtime hook: `(now, node) -> down?` (see
/// [`Simulation::with_downtime`]).
type DownFn = Box<dyn FnMut(SimTime, NodeId) -> bool>;

pub struct Simulation<N: Node, F> {
    nodes: Vec<N>,
    alive: Vec<bool>,
    scheduler: Scheduler<Delivery<N::Msg>>,
    delay: F,
    outbox: Vec<Outgoing<N::Msg>>,
    delivered: u64,
    dropped: u64,
    dead_letters: u64,
    suppressed: u64,
    peak_pending: usize,
    drop: Option<DropFn<N::Msg>>,
    jitter: Option<JitterFn<N::Msg>>,
    down: Option<DownFn>,
    egress: Option<EgressFn<N::Msg>>,
    busy_until: Vec<SimTime>,
}

impl<N: Node, F> std::fmt::Debug for Simulation<N, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.nodes.len())
            .field("now", &self.scheduler.now())
            .field("pending", &self.scheduler.pending())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl<N, F> Simulation<N, F>
where
    N: Node,
    F: FnMut(NodeId, NodeId) -> SimTime,
{
    /// Creates a simulation over `nodes` with the given network delay
    /// function.
    pub fn new(nodes: Vec<N>, delay: F) -> Simulation<N, F> {
        let busy_until = vec![0; nodes.len()];
        let alive = vec![true; nodes.len()];
        Simulation {
            nodes,
            alive,
            scheduler: Scheduler::new(),
            delay,
            outbox: Vec::new(),
            delivered: 0,
            dropped: 0,
            dead_letters: 0,
            suppressed: 0,
            peak_pending: 0,
            drop: None,
            jitter: None,
            down: None,
            egress: None,
            busy_until,
        }
    }

    /// Adds a node to a running simulation and returns its id. The node
    /// receives nothing until a message is addressed to it (via
    /// [`Simulation::inject_at`] or another node's send).
    pub fn spawn(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.alive.push(true);
        self.busy_until.push(0);
        id
    }

    /// Marks `id` as crashed: every delivery addressed to it from now on —
    /// including messages already in flight and its own pending timers —
    /// is silently discarded (counted by [`Simulation::dead_letters`]).
    /// The node's state is retained for post-mortem inspection. Returns
    /// `false` if the node was already dead.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn kill(&mut self, id: NodeId) -> bool {
        std::mem::replace(&mut self.alive[id.0], false)
    }

    /// `true` while `id` has not been [`Simulation::kill`]ed.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive[id.0]
    }

    /// Deliveries discarded because the destination was killed.
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// Installs an egress-serialisation model: `cost(from, msg)` is the
    /// time the sender's access link needs to put `msg` on the wire.
    /// Messages from one node serialise — each departs when the link frees
    /// up — so a burst of large messages (an unsplit rekey message, §1)
    /// delays everything queued behind it at that node. Timers
    /// (`send_after`) are unaffected. Returns `self` for chaining.
    pub fn with_egress(mut self, cost: impl FnMut(NodeId, &N::Msg) -> SimTime + 'static) -> Self {
        self.egress = Some(Box::new(cost));
        self
    }

    /// Installs a message-loss model: network sends (not `send_after`
    /// timers) for which `drop` returns `true` are silently discarded, as
    /// on a lossy UDP path. The hook sees the send time and the message,
    /// so a model can target one traffic class (e.g. bulk rekey copies)
    /// while control traffic stays reliable, or cut by time window (a
    /// network partition). Returns `self` for chaining.
    pub fn with_loss(
        mut self,
        drop: impl FnMut(SimTime, NodeId, NodeId, &N::Msg) -> bool + 'static,
    ) -> Self {
        self.set_loss(drop);
        self
    }

    /// Installs (or replaces) the message-loss model on a built
    /// simulation; the in-place form of [`Simulation::with_loss`].
    pub fn set_loss(
        &mut self,
        drop: impl FnMut(SimTime, NodeId, NodeId, &N::Msg) -> bool + 'static,
    ) {
        self.drop = Some(Box::new(drop));
    }

    /// Installs a delay-jitter model: every network send (not `send_after`
    /// timers) travels for its network delay *plus* the hook's extra
    /// delay. Jitter reorders traffic — two messages on the same link swap
    /// whenever their spacing is smaller than the jitter difference.
    /// Returns `self` for chaining.
    pub fn with_jitter(
        mut self,
        jitter: impl FnMut(SimTime, NodeId, NodeId, &N::Msg) -> SimTime + 'static,
    ) -> Self {
        self.set_jitter(jitter);
        self
    }

    /// Installs (or replaces) the jitter model on a built simulation; the
    /// in-place form of [`Simulation::with_jitter`].
    pub fn set_jitter(
        &mut self,
        jitter: impl FnMut(SimTime, NodeId, NodeId, &N::Msg) -> SimTime + 'static,
    ) {
        self.jitter = Some(Box::new(jitter));
    }

    /// Installs a downtime model: a delivery addressed to a node for which
    /// the hook returns `true` at delivery time is discarded and counted
    /// by [`Simulation::suppressed`]. Unlike [`Simulation::kill`] the
    /// node's state is retained and deliveries resume once the hook stops
    /// reporting it down — but note that any of the node's own pending
    /// timers that elapse during the window are lost with everything else,
    /// so drivers model a restart by injecting a message at or after the
    /// window's end. Returns `self` for chaining.
    pub fn with_downtime(mut self, down: impl FnMut(SimTime, NodeId) -> bool + 'static) -> Self {
        self.set_downtime(down);
        self
    }

    /// Installs (or replaces) the downtime model on a built simulation;
    /// the in-place form of [`Simulation::with_downtime`].
    pub fn set_downtime(&mut self, down: impl FnMut(SimTime, NodeId) -> bool + 'static) {
        self.down = Some(Box::new(down));
    }

    /// Number of messages discarded by the loss model.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Deliveries discarded because the destination was down (downtime
    /// model) at delivery time.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Total number of messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The largest number of in-flight events the queue ever held — a
    /// burstiness measure: a join wave or a partition heal shows up as a
    /// spike here long before it shows up in any per-node counter.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable access to a node (for external setup between runs).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Injects an external message for `to` (appearing to come from `from`)
    /// at absolute time `at`.
    pub fn inject_at(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: N::Msg) {
        self.scheduler.schedule_at(at, Delivery { from, to, msg });
        self.peak_pending = self.peak_pending.max(self.scheduler.pending());
    }

    fn flush_outbox(&mut self, from: NodeId) {
        let now = self.scheduler.now();
        for out in self.outbox.drain(..) {
            match out {
                Outgoing::Send { to, msg } => {
                    if let Some(drop) = self.drop.as_mut() {
                        if drop(now, from, to, &msg) {
                            self.dropped += 1;
                            continue;
                        }
                    }
                    let mut d = (self.delay)(from, to);
                    if let Some(jitter) = self.jitter.as_mut() {
                        d += jitter(now, from, to, &msg);
                    }
                    match self.egress.as_mut() {
                        None => self.scheduler.schedule_in(d, Delivery { from, to, msg }),
                        Some(cost) => {
                            let depart = now.max(self.busy_until[from.0]) + cost(from, &msg);
                            self.busy_until[from.0] = depart;
                            self.scheduler
                                .schedule_at(depart + d, Delivery { from, to, msg });
                        }
                    }
                }
                Outgoing::After { to, delay, msg } => {
                    self.scheduler
                        .schedule_in(delay, Delivery { from, to, msg });
                }
            }
        }
        self.peak_pending = self.peak_pending.max(self.scheduler.pending());
    }

    /// Delivers a single event, if any. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some((now, delivery)) = self.scheduler.pop() else {
            return false;
        };
        let Delivery { from, to, msg } = delivery;
        debug_assert!(to.0 < self.nodes.len(), "delivery to unknown node");
        if !self.alive[to.0] {
            self.dead_letters += 1;
            return true;
        }
        if let Some(down) = self.down.as_mut() {
            if down(now, to) {
                self.suppressed += 1;
                return true;
            }
        }
        self.delivered += 1;
        let mut ctx = Ctx {
            now,
            self_id: to,
            outbox: &mut self.outbox,
        };
        self.nodes[to.0].receive(&mut ctx, from, msg);
        self.flush_outbox(to);
        true
    }

    /// Runs until no events remain; returns the final simulated time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.scheduler.now()
    }

    /// Runs until the clock would pass `deadline` or the queue drains.
    /// Events at exactly `deadline` are processed; the clock never
    /// advances beyond `deadline`, so external injections at the deadline
    /// instant (churn-trace joins, kills) remain valid afterwards.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while matches!(self.scheduler.next_time(), Some(at) if at <= deadline) {
            self.step();
        }
        self.scheduler.now()
    }

    /// Consumes the simulation, returning the nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that counts pings and replies with pongs up to a limit.
    struct PingPong {
        received: Vec<(NodeId, u32, SimTime)>,
        replies_left: u32,
    }

    impl Node for PingPong {
        type Msg = u32;
        fn receive(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.received.push((from, msg, ctx.now()));
            if self.replies_left > 0 {
                self.replies_left -= 1;
                ctx.send(from, msg + 1);
            }
        }
    }

    fn sim(replies: [u32; 2]) -> Simulation<PingPong, impl FnMut(NodeId, NodeId) -> SimTime> {
        let nodes = replies
            .iter()
            .map(|&r| PingPong {
                received: Vec::new(),
                replies_left: r,
            })
            .collect();
        Simulation::new(nodes, |_, _| 10)
    }

    #[test]
    fn messages_bounce_with_delays() {
        let mut s = sim([2, 2]);
        s.inject_at(0, NodeId(0), NodeId(1), 0);
        let end = s.run_until_idle();
        // 0 -> 1 at t=0 (delivered t=0), then 4 bounces of 10us each.
        assert_eq!(end, 40);
        assert_eq!(s.delivered(), 5);
        let n1 = s.node(NodeId(1));
        assert_eq!(n1.received.len(), 3);
        assert_eq!(n1.received[0], (NodeId(0), 0, 0));
        assert_eq!(n1.received[1], (NodeId(0), 2, 20));
    }

    #[test]
    fn send_after_overrides_network_delay() {
        struct Timer {
            fired_at: Option<SimTime>,
        }
        impl Node for Timer {
            type Msg = ();
            fn receive(&mut self, ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
                if self.fired_at.is_none() {
                    self.fired_at = Some(ctx.now());
                    if ctx.now() == 0 {
                        ctx.send_after(ctx.self_id(), 500, ());
                        self.fired_at = None;
                    }
                }
            }
        }
        let mut s = Simulation::new(vec![Timer { fired_at: None }], |_, _| 1);
        s.inject_at(0, NodeId(0), NodeId(0), ());
        s.run_until_idle();
        assert_eq!(s.node(NodeId(0)).fired_at, Some(500));
    }

    #[test]
    fn loss_model_drops_network_sends_but_not_timers() {
        struct Echo {
            got: u32,
        }
        impl Node for Echo {
            type Msg = u32;
            fn receive(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
                self.got += 1;
                if msg > 0 {
                    ctx.send(NodeId(1), msg - 1); // dropped by the model
                    ctx.send_after(ctx.self_id(), 5, 0); // timer: immune
                }
            }
        }
        let mut s = Simulation::new(vec![Echo { got: 0 }, Echo { got: 0 }], |_, _| 1)
            .with_loss(|_, _, _, _| true);
        s.inject_at(0, NodeId(0), NodeId(0), 3);
        s.run_until_idle();
        assert_eq!(s.dropped(), 1, "the network send was dropped");
        assert_eq!(s.node(NodeId(1)).got, 0);
        assert_eq!(s.node(NodeId(0)).got, 2, "stimulus + timer");
    }

    #[test]
    fn egress_model_serialises_sends_per_node() {
        struct Fan {
            arrivals: Vec<SimTime>,
        }
        impl Node for Fan {
            type Msg = u64; // message "size"
            fn receive(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
                if msg > 0 {
                    // Node 0 fans three equally sized copies out at once.
                    ctx.send(NodeId(1), 0);
                    ctx.send(NodeId(1), 0);
                    ctx.send(NodeId(1), 0);
                } else {
                    self.arrivals.push(ctx.now());
                }
            }
        }
        let nodes = vec![Fan { arrivals: vec![] }, Fan { arrivals: vec![] }];
        let mut s = Simulation::new(nodes, |_, _| 100).with_egress(|_, _| 10);
        s.inject_at(0, NodeId(0), NodeId(0), 7);
        s.run_until_idle();
        // Three copies serialise at 10 each, then travel 100:
        assert_eq!(s.node(NodeId(1)).arrivals, vec![110, 120, 130]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut s = sim([100, 100]);
        s.inject_at(0, NodeId(0), NodeId(1), 0);
        s.run_until(25);
        assert_eq!(s.now(), 20, "clock holds at the last event <= deadline");
        let before = s.delivered();
        assert_eq!(before, 3); // t=0, 10, 20
                               // Injecting at the deadline instant is still valid.
        s.inject_at(25, NodeId(0), NodeId(1), 0);
        s.run_until_idle();
        assert!(s.delivered() > before);
    }

    #[test]
    fn loss_hook_filters_sends_by_payload() {
        struct Fan {
            got: Vec<u32>,
        }
        impl Node for Fan {
            type Msg = u32;
            fn receive(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
                if msg == 100 {
                    for m in 0..6u32 {
                        ctx.send(NodeId(1), m);
                    }
                } else {
                    self.got.push(msg);
                }
            }
        }
        let nodes = vec![Fan { got: vec![] }, Fan { got: vec![] }];
        let mut s = Simulation::new(nodes, |_, _| 1).with_loss(|_, _, _, m: &u32| m % 2 == 1);
        s.inject_at(0, NodeId(1), NodeId(0), 100);
        s.run_until_idle();
        assert_eq!(s.node(NodeId(1)).got, vec![0, 2, 4]);
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn jitter_adds_delay_and_reorders_but_spares_timers() {
        struct Fan {
            arrivals: Vec<(u32, SimTime)>,
        }
        impl Node for Fan {
            type Msg = u32;
            fn receive(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
                if msg == 100 {
                    ctx.send(NodeId(1), 1);
                    ctx.send(NodeId(1), 2);
                    ctx.send_after(ctx.self_id(), 30, 0); // timer: no jitter
                } else {
                    self.arrivals.push((msg, ctx.now()));
                }
            }
        }
        let nodes = vec![Fan { arrivals: vec![] }, Fan { arrivals: vec![] }];
        // Deterministic "jitter": the first copy gets +50, the second +0,
        // so the copies swap; the timer still fires at exactly +30.
        let mut extra = 50;
        let mut s = Simulation::new(nodes, |_, _| 10).with_jitter(move |_, _, _, _| {
            let d = extra;
            extra = 0;
            d
        });
        s.inject_at(0, NodeId(1), NodeId(0), 100);
        s.run_until_idle();
        assert_eq!(s.node(NodeId(1)).arrivals, vec![(2, 10), (1, 60)]);
        assert_eq!(s.node(NodeId(0)).arrivals, vec![(0, 30)]);
    }

    #[test]
    fn downtime_suppresses_deliveries_then_resumes() {
        let mut s = sim([100, 100]).with_downtime(|now, node| node == NodeId(1) && now < 35);
        s.inject_at(0, NodeId(0), NodeId(1), 0);
        // 0→1 at t=0 is suppressed (node 1 down): the exchange dies out.
        s.run_until_idle();
        assert_eq!(s.suppressed(), 1);
        assert_eq!(s.delivered(), 0);
        assert_eq!(s.dead_letters(), 0, "down is not dead");
        // After the window the node participates again.
        s.inject_at(40, NodeId(0), NodeId(1), 0);
        s.run_until(60);
        assert!(s.delivered() > 0);
        assert!(!s.node(NodeId(1)).received.is_empty());
    }

    #[test]
    fn loss_hook_sees_send_time() {
        struct Chatter;
        impl Node for Chatter {
            type Msg = ();
            fn receive(&mut self, ctx: &mut Ctx<'_, ()>, from: NodeId, _msg: ()) {
                ctx.send(from, ());
            }
        }
        // Cut the "link" during [20, 40): the bounce chain dies once a
        // send falls in the window.
        let mut s = Simulation::new(vec![Chatter, Chatter], |_, _| 10)
            .with_loss(|now, _, _, _| (20..40).contains(&now));
        s.inject_at(0, NodeId(0), NodeId(1), ());
        s.run_until_idle();
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.now(), 20, "last delivery at the window edge");
    }

    #[test]
    fn spawned_nodes_participate_and_killed_nodes_absorb() {
        let mut s = sim([5, 5]);
        let n2 = s.spawn(PingPong {
            received: Vec::new(),
            replies_left: 5,
        });
        assert_eq!(n2, NodeId(2));
        assert!(s.is_alive(n2));
        // The new node bounces with node 0 like any original node.
        s.inject_at(0, NodeId(0), n2, 7);
        s.run_until(15);
        assert!(!s.node(n2).received.is_empty());

        // Kill it mid-flight: node 0's reply is on the wire.
        assert!(s.kill(n2));
        assert!(!s.kill(n2), "double-kill reports already dead");
        let seen = s.node(n2).received.len();
        s.run_until_idle();
        assert_eq!(
            s.node(n2).received.len(),
            seen,
            "killed node receives nothing further"
        );
        assert!(
            s.dead_letters() > 0,
            "in-flight delivery became dead letter"
        );
        assert!(!s.is_alive(n2));
    }
}
