//! The core event queue: a deterministic time-ordered scheduler.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in microseconds since the start of the run.
pub type SimTime = u64;

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event scheduler.
///
/// Events scheduled for the same instant are delivered in scheduling order
/// (FIFO), which makes whole simulations reproducible bit-for-bit under a
/// fixed RNG seed.
///
/// ```
/// use rekey_sim::Scheduler;
/// let mut s: Scheduler<&str> = Scheduler::new();
/// s.schedule_in(10, "b");
/// s.schedule_in(5, "a");
/// s.schedule_in(10, "c");
/// assert_eq!(s.pop(), Some((5, "a")));
/// assert_eq!(s.pop(), Some((10, "b")));
/// assert_eq!(s.pop(), Some((10, "c")));
/// assert_eq!(s.pop(), None);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time 0.
    pub fn new() -> Scheduler<E> {
        Scheduler {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({} < {})",
            at,
            self.now
        );
        self.queue.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.queue.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next pending event without popping it (the clock
    /// does not advance).
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// `true` iff no events are pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut s: Scheduler<u32> = Scheduler::new();
        assert_eq!(s.now(), 0);
        s.schedule_in(100, 1);
        s.schedule_at(50, 2);
        assert_eq!(s.pop(), Some((50, 2)));
        assert_eq!(s.now(), 50);
        // Relative scheduling is relative to the new now.
        s.schedule_in(10, 3);
        assert_eq!(s.pop(), Some((60, 3)));
        assert_eq!(s.pop(), Some((100, 1)));
        assert!(s.is_idle());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(10, 1);
        s.pop();
        s.schedule_at(5, 2);
    }

    #[test]
    fn fifo_among_simultaneous_events() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..100 {
            s.schedule_at(42, i);
        }
        for i in 0..100 {
            assert_eq!(s.pop(), Some((42, i)));
        }
    }

    #[test]
    fn pending_counts() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert_eq!(s.pending(), 0);
        s.schedule_in(1, ());
        s.schedule_in(2, ());
        assert_eq!(s.pending(), 2);
        s.pop();
        assert_eq!(s.pending(), 1);
    }
}
