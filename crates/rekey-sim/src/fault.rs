//! Composable fault injection: partitions, node outages, delay jitter,
//! and i.i.d. or burst (Gilbert–Elliott) message loss.
//!
//! A [`FaultPlan`] is a declarative schedule of faults, built fluently and
//! then compiled into a [`FaultInjector`] that a simulation driver wires
//! into the [`Simulation`](crate::Simulation) hooks:
//!
//! * **partitions** cut every message crossing cell boundaries during the
//!   window ([`FaultInjector::cut`] → loss hook, applied to all traffic);
//! * **outages** take single nodes (including a server) off the network
//!   for a window ([`FaultInjector::is_down`] → downtime hook); the plan
//!   exposes the windows via [`FaultPlan::outages`] so the driver can
//!   schedule restart events at each window's end;
//! * **jitter** adds a uniform random extra delay per network send
//!   ([`FaultInjector::extra_delay`] → jitter hook), which naturally
//!   reorders messages between a pair of nodes;
//! * **loss** combines an i.i.d. per-message probability with an optional
//!   [`GilbertElliott`] two-state burst process ([`FaultInjector::lose`]);
//!   the driver decides which traffic class the draw applies to.
//!
//! All randomness comes from per-sender streams derived with
//! [`node_rng`], so a run is bit-for-bit reproducible for a fixed seed
//! and fault plan regardless of how other nodes consume randomness.
//!
//! ```
//! use rekey_sim::{FaultPlan, GilbertElliott, NodeId};
//!
//! let plan = FaultPlan::new()
//!     .partition(
//!         vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
//!         1_000_000,
//!         5_000_000,
//!     )
//!     .outage(NodeId(0), 7_000_000, 9_000_000)
//!     .jitter(20_000)
//!     .burst_loss(GilbertElliott::moderate());
//! let mut inj = plan.injector(42);
//! assert!(inj.cut(2_000_000, NodeId(1), NodeId(2)), "cross-cell, in window");
//! assert!(!inj.cut(2_000_000, NodeId(2), NodeId(3)), "same cell");
//! assert!(!inj.cut(6_000_000, NodeId(1), NodeId(2)), "window over");
//! assert!(inj.is_down(8_000_000, NodeId(0)));
//! assert!(!inj.is_down(9_000_000, NodeId(0)), "windows are half-open");
//! assert!(inj.extra_delay(NodeId(1), NodeId(2)) <= 20_000);
//! ```

use std::cell::Cell;
use std::collections::BTreeMap;

use rand::Rng;

use crate::engine::NodeId;
use crate::event::SimTime;
use crate::{node_rng, SimRng};

/// Parameters of a Gilbert–Elliott two-state loss process: the channel
/// alternates between a *good* and a *bad* state, each with its own loss
/// probability, producing the correlated loss bursts of real paths that an
/// i.i.d. model cannot (one lost rekey copy makes the next loss likely).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-message probability of moving good → bad.
    pub p_enter_bad: f64,
    /// Per-message probability of moving bad → good.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A moderate burst profile: rare, short bad periods with heavy loss
    /// inside them (stationary mean loss ≈ 5%).
    pub fn moderate() -> GilbertElliott {
        GilbertElliott {
            p_enter_bad: 0.02,
            p_exit_bad: 0.25,
            loss_good: 0.005,
            loss_bad: 0.60,
        }
    }

    /// Stationary mean loss rate of the chain, for comparing a burst
    /// profile against an i.i.d. rate in experiments.
    pub fn mean_loss(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom == 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_enter_bad / denom;
        (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad
    }
}

/// A scheduled network partition: during `[from, until)` only messages
/// within one cell are delivered. Nodes not listed in any cell share an
/// implicit default cell.
#[derive(Debug, Clone)]
struct Partition {
    cells: Vec<Vec<NodeId>>,
    from: SimTime,
    until: SimTime,
}

impl Partition {
    fn cell_of(&self, node: NodeId) -> usize {
        self.cells
            .iter()
            .position(|cell| cell.contains(&node))
            .unwrap_or(usize::MAX)
    }
}

/// A scheduled single-node outage window (see [`FaultPlan::outage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The node taken off the network.
    pub node: NodeId,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive): the node is reachable again at
    /// `until`, so a restart event injected at `until` is delivered.
    pub until: SimTime,
}

/// A declarative, composable schedule of faults. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    partitions: Vec<Partition>,
    outages: Vec<Outage>,
    jitter_max: SimTime,
    iid_loss: f64,
    burst: Option<GilbertElliott>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Partitions the network into `cells` during `[from, until)`: a
    /// message is cut iff its sender and receiver are in different cells.
    /// Nodes absent from every cell share one implicit extra cell.
    /// Multiple (even overlapping) partitions compose: a message is cut if
    /// any active partition separates the endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    pub fn partition(
        mut self,
        cells: Vec<Vec<NodeId>>,
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        assert!(
            from < until,
            "partition window is empty ({from} >= {until})"
        );
        self.partitions.push(Partition { cells, from, until });
        self
    }

    /// Takes `node` off the network during `[from, until)`: every delivery
    /// addressed to it in the window — including its own timers — is
    /// discarded. Its state is retained; the driver models a restart by
    /// injecting a message at or after `until` (see [`FaultPlan::outages`]).
    ///
    /// # Panics
    ///
    /// Panics if `from >= until`.
    pub fn outage(mut self, node: NodeId, from: SimTime, until: SimTime) -> FaultPlan {
        assert!(from < until, "outage window is empty ({from} >= {until})");
        self.outages.push(Outage { node, from, until });
        self
    }

    /// Adds a uniform random extra delay in `[0, max]` µs to every network
    /// send, which reorders messages (two sends on the same link can swap
    /// whenever their spacing is below the jitter magnitude).
    pub fn jitter(mut self, max: SimTime) -> FaultPlan {
        self.jitter_max = max;
        self
    }

    /// Independent per-message loss with probability `p`, on top of any
    /// burst process.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn iid_loss(mut self, p: f64) -> FaultPlan {
        assert!(
            (0.0..1.0).contains(&p),
            "loss probability must be in [0, 1)"
        );
        self.iid_loss = p;
        self
    }

    /// Burst loss from a per-sender [`GilbertElliott`] chain, advanced one
    /// step per loss draw.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` (loss probabilities
    /// must additionally be below 1).
    pub fn burst_loss(mut self, ge: GilbertElliott) -> FaultPlan {
        for p in [ge.p_enter_bad, ge.p_exit_bad] {
            assert!(
                (0.0..=1.0).contains(&p),
                "transition probability must be in [0, 1]"
            );
        }
        for p in [ge.loss_good, ge.loss_bad] {
            assert!(
                (0.0..1.0).contains(&p),
                "loss probability must be in [0, 1)"
            );
        }
        self.burst = Some(ge);
        self
    }

    /// The scheduled outage windows, for the driver to pair each with a
    /// restart event at `until`.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// The configured jitter bound (0 when no jitter was requested).
    pub fn jitter_max(&self) -> SimTime {
        self.jitter_max
    }

    /// `true` iff the plan includes a loss process (i.i.d. or burst).
    pub fn has_loss(&self) -> bool {
        self.iid_loss > 0.0 || self.burst.is_some()
    }

    /// Compiles the plan into a deterministic injector seeded by `seed`.
    pub fn injector(&self, seed: u64) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            seed,
            loss_streams: BTreeMap::new(),
            jitter_streams: BTreeMap::new(),
            partition_cuts: Cell::new(0),
            loss_drops: Cell::new(0),
        }
    }
}

/// Counters of faults that actually fired, as opposed to the faults that
/// were merely scheduled: a partition only shows up here when a message
/// tried to cross it, and a loss process only when a draw came up lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages cut by an active partition.
    pub partition_cuts: u64,
    /// Loss draws (i.i.d. or burst) that came up lost.
    pub loss_drops: u64,
}

/// Per-sender loss state: an RNG stream plus the Gilbert–Elliott channel
/// state (`true` = bad).
struct LossStream {
    rng: SimRng,
    in_bad: bool,
}

/// The runtime form of a [`FaultPlan`]: pure predicates over
/// `(time, endpoints)` plus per-sender random streams. One injector is
/// shared by a simulation's loss, jitter, and downtime hooks.
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    loss_streams: BTreeMap<usize, LossStream>,
    jitter_streams: BTreeMap<usize, SimRng>,
    // `Cell`s because `cut` is called through the simulation's loss hook
    // with a shared borrow.
    partition_cuts: Cell<u64>,
    loss_drops: Cell<u64>,
}

/// Domain separators so the loss and jitter streams of one node differ.
const LOSS_STREAM: u64 = 0x4C4F_5353_4641_5544; // "LOSSFAUD"
const JITTER_STREAM: u64 = 0x4A49_5454_4552_0001;

impl FaultInjector {
    /// `true` iff an active partition separates `from` and `to` at `now`.
    /// Applies to every traffic class: a partition cuts control traffic
    /// and bulk traffic alike.
    pub fn cut(&self, now: SimTime, from: NodeId, to: NodeId) -> bool {
        let cut = self
            .plan
            .partitions
            .iter()
            .any(|p| now >= p.from && now < p.until && p.cell_of(from) != p.cell_of(to));
        if cut {
            self.partition_cuts.set(self.partition_cuts.get() + 1);
        }
        cut
    }

    /// Draws the loss processes for one message sent by `from`: the i.i.d.
    /// draw and one step of the sender's Gilbert–Elliott chain. Both
    /// streams advance on every call, so the outcome sequence of one
    /// sender is independent of every other sender's traffic.
    pub fn lose(&mut self, from: NodeId) -> bool {
        if self.plan.iid_loss == 0.0 && self.plan.burst.is_none() {
            return false;
        }
        let seed = self.seed;
        let stream = self
            .loss_streams
            .entry(from.0)
            .or_insert_with(|| LossStream {
                rng: node_rng(seed ^ LOSS_STREAM, from),
                in_bad: false,
            });
        let mut lost = false;
        if self.plan.iid_loss > 0.0 {
            lost |= stream.rng.gen_bool(self.plan.iid_loss);
        }
        if let Some(ge) = &self.plan.burst {
            let flip = if stream.in_bad {
                ge.p_exit_bad
            } else {
                ge.p_enter_bad
            };
            if stream.rng.gen_bool(flip) {
                stream.in_bad = !stream.in_bad;
            }
            let p = if stream.in_bad {
                ge.loss_bad
            } else {
                ge.loss_good
            };
            if p > 0.0 {
                lost |= stream.rng.gen_bool(p);
            }
        }
        if lost {
            self.loss_drops.set(self.loss_drops.get() + 1);
        }
        lost
    }

    /// Counters of the faults that fired so far (see [`FaultStats`]).
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            partition_cuts: self.partition_cuts.get(),
            loss_drops: self.loss_drops.get(),
        }
    }

    /// Draws the extra delay for one network send by `from` (0 without
    /// jitter). The `to` endpoint is accepted for symmetry with the
    /// simulation's jitter hook but does not select the stream.
    pub fn extra_delay(&mut self, from: NodeId, _to: NodeId) -> SimTime {
        if self.plan.jitter_max == 0 {
            return 0;
        }
        let seed = self.seed;
        let max = self.plan.jitter_max;
        let rng = self
            .jitter_streams
            .entry(from.0)
            .or_insert_with(|| node_rng(seed ^ JITTER_STREAM, from));
        rng.gen_range(0..=max)
    }

    /// `true` iff `node` is inside one of its outage windows at `now`.
    pub fn is_down(&self, now: SimTime, node: NodeId) -> bool {
        self.plan
            .outages
            .iter()
            .any(|o| o.node == node && now >= o.from && now < o.until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_cuts_only_cross_cell_messages_in_window() {
        let plan =
            FaultPlan::new().partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]], 100, 200);
        let inj = plan.injector(1);
        assert!(!inj.cut(99, NodeId(0), NodeId(2)), "before the window");
        assert!(inj.cut(100, NodeId(0), NodeId(2)));
        assert!(inj.cut(199, NodeId(2), NodeId(1)), "cuts are symmetric");
        assert!(!inj.cut(200, NodeId(0), NodeId(2)), "half-open window");
        assert!(!inj.cut(150, NodeId(0), NodeId(1)), "same cell");
        // Unlisted nodes share the implicit default cell.
        assert!(!inj.cut(150, NodeId(7), NodeId(8)));
        assert!(inj.cut(150, NodeId(7), NodeId(0)));
    }

    #[test]
    fn overlapping_partitions_compose() {
        let plan = FaultPlan::new()
            .partition(vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]], 0, 100)
            .partition(vec![vec![NodeId(1)], vec![NodeId(2)]], 50, 150);
        let inj = plan.injector(1);
        assert!(inj.cut(25, NodeId(0), NodeId(1)));
        assert!(!inj.cut(25, NodeId(1), NodeId(2)), "second not active yet");
        assert!(inj.cut(75, NodeId(1), NodeId(2)), "either partition cuts");
        // After the first expires, nodes unlisted in the second share its
        // implicit default cell again.
        assert!(!inj.cut(125, NodeId(0), NodeId(7)), "first expired");
        assert!(
            inj.cut(125, NodeId(0), NodeId(1)),
            "0 is in the second's default cell"
        );
    }

    #[test]
    fn outage_windows_are_per_node_and_half_open() {
        let plan = FaultPlan::new()
            .outage(NodeId(3), 10, 20)
            .outage(NodeId(3), 40, 50)
            .outage(NodeId(5), 15, 25);
        let inj = plan.injector(1);
        assert!(inj.is_down(10, NodeId(3)));
        assert!(!inj.is_down(20, NodeId(3)), "reachable again at `until`");
        assert!(inj.is_down(45, NodeId(3)), "second window");
        assert!(inj.is_down(16, NodeId(5)));
        assert!(!inj.is_down(16, NodeId(4)));
        assert_eq!(plan.outages().len(), 3);
    }

    #[test]
    fn iid_loss_rate_is_roughly_observed() {
        let mut inj = FaultPlan::new().iid_loss(0.25).injector(7);
        let lost = (0..10_000).filter(|_| inj.lose(NodeId(1))).count();
        assert!((2_000..3_000).contains(&lost), "got {lost} / 10000");
    }

    #[test]
    fn burst_loss_is_correlated_but_matches_mean() {
        let ge = GilbertElliott::moderate();
        let mut inj = FaultPlan::new().burst_loss(ge).injector(11);
        let draws: Vec<bool> = (0..40_000).map(|_| inj.lose(NodeId(1))).collect();
        let lost = draws.iter().filter(|&&l| l).count() as f64 / draws.len() as f64;
        let mean = ge.mean_loss();
        assert!(
            (lost - mean).abs() < 0.02,
            "observed {lost:.3} vs stationary {mean:.3}"
        );
        // Burstiness: the probability that a loss follows a loss is well
        // above the marginal rate (i.i.d. would make them equal).
        let mut pairs = 0;
        let mut after_loss = 0;
        for w in draws.windows(2) {
            if w[0] {
                pairs += 1;
                if w[1] {
                    after_loss += 1;
                }
            }
        }
        let conditional = after_loss as f64 / pairs as f64;
        assert!(
            conditional > 2.0 * mean,
            "loss-after-loss {conditional:.3} not bursty vs mean {mean:.3}"
        );
    }

    #[test]
    fn per_sender_streams_are_deterministic_and_independent() {
        let plan = FaultPlan::new().iid_loss(0.3).jitter(1_000);
        let mut a = plan.injector(42);
        let mut b = plan.injector(42);
        // Interleave differently: same per-sender outcomes regardless.
        let a1: Vec<bool> = (0..100).map(|_| a.lose(NodeId(1))).collect();
        let a2: Vec<bool> = (0..100).map(|_| a.lose(NodeId(2))).collect();
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        for _ in 0..100 {
            b2.push(b.lose(NodeId(2)));
            b1.push(b.lose(NodeId(1)));
        }
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        let j1: Vec<SimTime> = (0..10)
            .map(|_| a.extra_delay(NodeId(1), NodeId(2)))
            .collect();
        let j2: Vec<SimTime> = (0..10)
            .map(|_| b.extra_delay(NodeId(1), NodeId(9)))
            .collect();
        assert_eq!(j1, j2, "jitter stream is per-sender");
        assert!(j1.iter().all(|&d| d <= 1_000));
    }

    #[test]
    fn stats_count_only_faults_that_fired() {
        let plan = FaultPlan::new()
            .partition(vec![vec![NodeId(0)], vec![NodeId(1)]], 100, 200)
            .iid_loss(0.5);
        let mut inj = plan.injector(3);
        assert_eq!(inj.stats(), FaultStats::default(), "nothing fired yet");
        assert!(!inj.cut(50, NodeId(0), NodeId(1)), "before the window");
        assert!(inj.cut(150, NodeId(0), NodeId(1)));
        assert!(inj.cut(150, NodeId(1), NodeId(0)));
        let drops = (0..1_000).filter(|_| inj.lose(NodeId(0))).count() as u64;
        let stats = inj.stats();
        assert_eq!(stats.partition_cuts, 2);
        assert_eq!(stats.loss_drops, drops);
        assert!(drops > 0);
    }

    #[test]
    #[should_panic(expected = "partition window is empty")]
    fn rejects_empty_partition_window() {
        let _ = FaultPlan::new().partition(vec![], 50, 50);
    }

    #[test]
    #[should_panic(expected = "loss probability must be in [0, 1)")]
    fn rejects_out_of_range_iid_loss() {
        let _ = FaultPlan::new().iid_loss(1.0);
    }
}
