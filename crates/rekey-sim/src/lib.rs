//! Deterministic discrete event simulation engine.
//!
//! The paper's evaluation (§4) says: "For efficiency, we wrote our own
//! discrete event-driven simulator. We simulate the sending and the
//! reception of a message as events." This crate is that simulator:
//!
//! * [`Scheduler`] — a time-ordered event queue with FIFO tie-breaking, so
//!   that every run is reproducible under a fixed seed;
//! * [`Simulation`] / [`Node`] — an actor-style layer where protocol
//!   participants exchange messages whose delivery latency comes from a
//!   pluggable network delay function (one-way delays from
//!   `rekey_net::Network` in the experiments);
//! * [`seeded_rng`] — the workspace-standard deterministic RNG;
//! * [`fault`] — composable chaos injection ([`FaultPlan`]): partitions,
//!   node outages, delay jitter, and i.i.d. or Gilbert–Elliott burst
//!   loss, all deterministic under a fixed seed.
//!
//! Time is integer microseconds everywhere ([`SimTime`]). The sans-I/O
//! protocol state machines in `rekey-proto` are written against this
//! unit through their driver's clock, which is what lets the same code
//! run under the simulator *and* against the wall clock: the real-socket
//! driver simply reports microseconds since its epoch as [`SimTime`].
//!
//! # Example
//!
//! ```
//! use rekey_sim::{Ctx, Node, NodeId, Simulation};
//!
//! struct Echo(Option<u64>);
//! impl Node for Echo {
//!     type Msg = u64;
//!     fn receive(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
//!         self.0 = Some(ctx.now());
//!         if msg > 0 {
//!             ctx.send(from, msg - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(vec![Echo(None), Echo(None)], |_, _| 250);
//! sim.inject_at(0, NodeId(0), NodeId(1), 3);
//! let end = sim.run_until_idle();
//! assert_eq!(end, 750); // three 250 µs bounces after the initial delivery
//! ```

mod engine;
mod event;
pub mod fault;

pub use engine::{Ctx, Node, NodeId, Outgoing, Simulation};
pub use event::{Scheduler, SimTime};
pub use fault::{FaultInjector, FaultPlan, FaultStats, GilbertElliott, Outage};

use rand::SeedableRng;

/// The deterministic RNG used across the workspace's simulations.
pub type SimRng = rand_chacha::ChaCha12Rng;

/// Creates the workspace-standard deterministic RNG from a 64-bit seed.
///
/// ```
/// use rand::Rng;
/// let mut a = rekey_sim::seeded_rng(1);
/// let mut b = rekey_sim::seeded_rng(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Derives a per-node RNG from a base seed and the node's id, so every
/// node in a simulation draws from its own deterministic stream (used for
/// e.g. heartbeat phase stagger) regardless of the order in which other
/// nodes consume randomness.
///
/// The mixing is a splitmix64 round, so adjacent node ids do not produce
/// correlated ChaCha seeds.
pub fn node_rng(base_seed: u64, node: NodeId) -> SimRng {
    let mut z = base_seed ^ (node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    seeded_rng(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic_and_seed_sensitive() {
        let x: u64 = seeded_rng(7).gen();
        let y: u64 = seeded_rng(7).gen();
        let z: u64 = seeded_rng(8).gen();
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn node_rng_streams_are_independent_and_reproducible() {
        let a: u64 = node_rng(7, NodeId(0)).gen();
        let b: u64 = node_rng(7, NodeId(1)).gen();
        let c: u64 = node_rng(8, NodeId(0)).gen();
        assert_ne!(a, b, "different nodes draw different streams");
        assert_ne!(a, c, "different base seeds draw different streams");
        assert_eq!(a, node_rng(7, NodeId(0)).gen::<u64>(), "reproducible");
    }
}
