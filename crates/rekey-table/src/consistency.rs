//! K-consistency checking (Definition 3).

use std::collections::HashMap;
use std::fmt;

use rekey_id::{IdSpec, IdTree, UserId};

use crate::entry::Member;
use crate::table::NeighborTable;

/// A violation of Definition 3 found by [`check_consistency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyViolation {
    /// An `(i, j)`-entry with `j == owner.ID[i]` is non-empty.
    OwnColumnNotEmpty {
        /// Table owner.
        owner: UserId,
        /// Row index.
        i: usize,
        /// Column digit.
        j: u16,
    },
    /// An entry holds fewer than `min(K, m)` neighbors.
    TooFewNeighbors {
        /// Table owner.
        owner: UserId,
        /// Row index.
        i: usize,
        /// Column digit.
        j: u16,
        /// Neighbors stored.
        stored: usize,
        /// `min(K, m)` required by Definition 3.
        required: usize,
    },
    /// An entry holds a member that is not in the owner's `(i, j)`-ID
    /// subtree (or is not in the group at all).
    ForeignNeighbor {
        /// Table owner.
        owner: UserId,
        /// Row index.
        i: usize,
        /// Column digit.
        j: u16,
        /// The offending neighbor ID.
        neighbor: UserId,
    },
}

impl fmt::Display for ConsistencyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyViolation::OwnColumnNotEmpty { owner, i, j } => {
                write!(f, "table of {owner}: entry ({i},{j}) must be empty")
            }
            ConsistencyViolation::TooFewNeighbors {
                owner,
                i,
                j,
                stored,
                required,
            } => write!(
                f,
                "table of {owner}: entry ({i},{j}) stores {stored} neighbors, needs {required}"
            ),
            ConsistencyViolation::ForeignNeighbor {
                owner,
                i,
                j,
                neighbor,
            } => write!(
                f,
                "table of {owner}: entry ({i},{j}) holds {neighbor} from the wrong subtree"
            ),
        }
    }
}

impl std::error::Error for ConsistencyViolation {}

/// Checks that `tables` are K-consistent for the group `members`
/// (Definition 3): for every user `u` and entry `(i, j)`,
///
/// 1. if `j == u.ID[i]` the entry is empty, and
/// 2. otherwise the entry contains `min(K, m)` `(i, j)`-neighbors, where
///    `m` is the population of `u`'s `(i, j)`-ID subtree —
///
/// and additionally that every stored neighbor really belongs to the
/// owner's `(i, j)`-ID subtree and the current membership.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_consistency(
    spec: &IdSpec,
    members: &[Member],
    tables: &[NeighborTable],
    k: usize,
) -> Result<(), ConsistencyViolation> {
    let tree = IdTree::from_users(spec, members.iter().map(|m| m.id.clone()));
    let in_group: HashMap<&UserId, ()> = members.iter().map(|m| (&m.id, ())).collect();
    for table in tables {
        let owner = table.owner();
        for i in 0..spec.depth() {
            for j in 0..spec.base() {
                let entry = table.entry(i, j);
                if j == owner.digit(i) {
                    if !entry.is_empty() {
                        return Err(ConsistencyViolation::OwnColumnNotEmpty {
                            owner: owner.clone(),
                            i,
                            j,
                        });
                    }
                    continue;
                }
                let subtree_root = owner.prefix(i).child(j);
                for record in entry.iter() {
                    let id = &record.member.id;
                    if !subtree_root.is_prefix_of_id(id) || !in_group.contains_key(id) {
                        return Err(ConsistencyViolation::ForeignNeighbor {
                            owner: owner.clone(),
                            i,
                            j,
                            neighbor: id.clone(),
                        });
                    }
                }
                let m = tree.node(&subtree_root).map_or(0, |n| n.user_count());
                let required = k.min(m);
                if entry.len() < required {
                    return Err(ConsistencyViolation::TooFewNeighbors {
                        owner: owner.clone(),
                        i,
                        j,
                        stored: entry.len(),
                        required,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::NeighborRecord;
    use crate::table::PrimaryPolicy;
    use rekey_net::HostId;

    fn spec() -> IdSpec {
        IdSpec::new(2, 3).unwrap()
    }

    fn member(digits: [u16; 2], host: usize) -> Member {
        Member {
            id: UserId::new(&spec(), digits.to_vec()).unwrap(),
            host: HostId(host),
            joined_at: 0,
        }
    }

    fn rec(m: &Member, rtt: u64) -> NeighborRecord {
        NeighborRecord {
            member: m.clone(),
            rtt,
        }
    }

    #[test]
    fn accepts_consistent_tables() {
        let s = spec();
        let a = member([0, 0], 0);
        let b = member([1, 0], 1);
        let mut ta = NeighborTable::new(&s, a.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        ta.insert(rec(&b, 10));
        let mut tb = NeighborTable::new(&s, b.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        tb.insert(rec(&a, 10));
        let members = vec![a, b];
        check_consistency(&s, &members, &[ta, tb], 2).unwrap();
    }

    #[test]
    fn detects_missing_neighbor() {
        let s = spec();
        let a = member([0, 0], 0);
        let b = member([1, 0], 1);
        let ta = NeighborTable::new(&s, a.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        let mut tb = NeighborTable::new(&s, b.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        tb.insert(rec(&a, 10));
        let members = vec![a, b];
        let err = check_consistency(&s, &members, &[ta, tb], 2).unwrap_err();
        assert!(matches!(
            err,
            ConsistencyViolation::TooFewNeighbors { i: 0, j: 1, .. }
        ));
        assert!(err.to_string().contains("needs 1"));
    }

    #[test]
    fn detects_departed_neighbor() {
        let s = spec();
        let a = member([0, 0], 0);
        let b = member([1, 0], 1);
        let ghost = member([2, 0], 2);
        let mut ta = NeighborTable::new(&s, a.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        ta.insert(rec(&b, 10));
        ta.insert(rec(&ghost, 10));
        let mut tb = NeighborTable::new(&s, b.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        tb.insert(rec(&a, 10));
        let members = vec![a, b]; // ghost is not a member
        let err = check_consistency(&s, &members, &[ta, tb], 2).unwrap_err();
        assert!(matches!(err, ConsistencyViolation::ForeignNeighbor { .. }));
    }

    #[test]
    fn one_consistency_weaker_than_k() {
        let s = spec();
        // Three members share subtree [2]; a's entry (0,2) holds only one.
        let a = member([0, 0], 0);
        let b = member([2, 0], 1);
        let c = member([2, 1], 2);
        let mut ta = NeighborTable::new(&s, a.id.clone(), 4, PrimaryPolicy::SmallestRtt);
        ta.insert(rec(&b, 10));
        let mut tb = NeighborTable::new(&s, b.id.clone(), 4, PrimaryPolicy::SmallestRtt);
        tb.insert(rec(&a, 10));
        tb.insert(rec(&c, 10));
        let mut tc = NeighborTable::new(&s, c.id.clone(), 4, PrimaryPolicy::SmallestRtt);
        tc.insert(rec(&a, 10));
        tc.insert(rec(&b, 10));
        let members = vec![a, b, c];
        let tables = vec![ta, tb, tc];
        // 1-consistent…
        check_consistency(&s, &members, &tables, 1).unwrap();
        // …but not 2-consistent.
        assert!(check_consistency(&s, &members, &tables, 2).is_err());
    }
}
