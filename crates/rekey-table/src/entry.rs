//! Neighbor records and single table entries.

use rekey_id::UserId;
use rekey_net::{HostId, Micros};

/// A group member as seen by the table layer: its ID, its network host, and
/// the time the key server assigned its ID (the paper's *joining time*,
/// Appendix B, used by the cluster rekeying heuristic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Member {
    /// The member's user ID.
    pub id: UserId,
    /// The member's network host.
    pub host: HostId,
    /// Joining time per the key server's clock, microseconds.
    pub joined_at: Micros,
}

/// One neighbor stored in a table entry: a member's *user record* plus the
/// performance measure the paper prescribes for rekey transport — "the RTT
/// between the neighbor and the owner of the table" (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborRecord {
    /// The neighbor's user record.
    pub member: Member,
    /// RTT between this neighbor and the table owner, microseconds.
    pub rtt: Micros,
}

/// A single `(i, j)`-entry: up to `K` neighbors of the owner's `(i, j)`-ID
/// subtree, "arranged in increasing order of their RTTs" (§2.2).
///
/// The first neighbor is the entry's **primary** neighbor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableEntry {
    neighbors: Vec<NeighborRecord>,
}

impl TableEntry {
    /// An empty entry.
    pub fn new() -> TableEntry {
        TableEntry::default()
    }

    /// Inserts a neighbor keeping RTT order, evicting the worst neighbor if
    /// the entry already holds `capacity` records. Returns `false` (and
    /// leaves the entry unchanged) if the neighbor is already present or if
    /// it would rank below a full entry's worst record.
    pub fn insert(&mut self, record: NeighborRecord, capacity: usize) -> bool {
        if self
            .neighbors
            .iter()
            .any(|n| n.member.id == record.member.id)
        {
            return false;
        }
        let pos = self.neighbors.partition_point(|n| n.rtt <= record.rtt);
        if pos >= capacity {
            return false;
        }
        self.neighbors.insert(pos, record);
        self.neighbors.truncate(capacity);
        true
    }

    /// Removes the neighbor with the given ID; returns `true` if present.
    pub fn remove(&mut self, id: &UserId) -> bool {
        let before = self.neighbors.len();
        self.neighbors.retain(|n| &n.member.id != id);
        self.neighbors.len() != before
    }

    /// The primary neighbor: the stored record with the smallest RTT.
    pub fn primary(&self) -> Option<&NeighborRecord> {
        self.neighbors.first()
    }

    /// The stored neighbor with the earliest joining time (used as primary
    /// at row `D − 2` under the cluster rekeying heuristic, Appendix B).
    pub fn earliest_joined(&self) -> Option<&NeighborRecord> {
        self.neighbors
            .iter()
            .min_by_key(|n| (n.member.joined_at, n.member.id.clone()))
    }

    /// Number of stored neighbors.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// `true` iff no neighbors are stored.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Iterates over neighbors in increasing RTT order.
    pub fn iter(&self) -> impl Iterator<Item = &NeighborRecord> {
        self.neighbors.iter()
    }

    /// `true` iff a neighbor with this ID is stored.
    pub fn contains(&self, id: &UserId) -> bool {
        self.neighbors.iter().any(|n| &n.member.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;

    fn rec(digit: u16, rtt: Micros, joined_at: Micros) -> NeighborRecord {
        let spec = IdSpec::new(2, 8).unwrap();
        NeighborRecord {
            member: Member {
                id: UserId::new(&spec, vec![digit, 0]).unwrap(),
                host: HostId(digit as usize),
                joined_at,
            },
            rtt,
        }
    }

    #[test]
    fn keeps_rtt_order_and_capacity() {
        let mut e = TableEntry::new();
        assert!(e.insert(rec(1, 30, 0), 2));
        assert!(e.insert(rec(2, 10, 0), 2));
        assert_eq!(e.primary().unwrap().rtt, 10);
        // Full entry: a better record evicts the worst…
        assert!(e.insert(rec(3, 20, 0), 2));
        assert_eq!(e.len(), 2);
        assert!(!e.contains(&rec(1, 0, 0).member.id));
        // …and a worse record is rejected.
        assert!(!e.insert(rec(4, 99, 0), 2));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn rejects_duplicates() {
        let mut e = TableEntry::new();
        assert!(e.insert(rec(1, 30, 0), 4));
        assert!(!e.insert(rec(1, 20, 0), 4));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn remove_works() {
        let mut e = TableEntry::new();
        e.insert(rec(1, 30, 0), 4);
        e.insert(rec(2, 10, 0), 4);
        assert!(e.remove(&rec(1, 0, 0).member.id));
        assert!(!e.remove(&rec(1, 0, 0).member.id));
        assert_eq!(e.primary().unwrap().member.host, HostId(2));
    }

    #[test]
    fn earliest_joined_ignores_rtt() {
        let mut e = TableEntry::new();
        e.insert(rec(1, 5, 900), 4);
        e.insert(rec(2, 50, 100), 4);
        assert_eq!(e.primary().unwrap().member.joined_at, 900);
        assert_eq!(e.earliest_joined().unwrap().member.joined_at, 100);
    }

    #[test]
    fn ties_insert_stably() {
        let mut e = TableEntry::new();
        e.insert(rec(1, 10, 0), 4);
        e.insert(rec(2, 10, 0), 4);
        // Equal RTT: first inserted stays primary.
        assert_eq!(e.primary().unwrap().member.host, HostId(1));
    }
}
