//! Hypercube-routing neighbor tables and K-consistency (Zhang, Lam & Liu,
//! ICDCS 2005, §2.2).
//!
//! Each user maintains a table of `D` rows × `B` entries; the `(i, j)`-entry
//! holds up to `K` members of the user's `(i, j)`-ID subtree sorted by RTT,
//! the first being the entry's *primary* neighbor. The tables embed
//! multicast trees rooted at the key server and at every user — the T-mesh
//! multicast scheme (`rekey-tmesh`) is driven entirely by these tables.
//!
//! The correctness invariant is **K-consistency** (Definition 3), checked by
//! [`check_consistency`]; 1-consistency is what Theorem 1 (exactly-once
//! delivery) requires. Tables can be built two ways:
//!
//! * [`oracle`] — global-knowledge construction, equivalent to a converged
//!   Silk join-protocol run (the paper's own simulations simplify Silk the
//!   same way, §4);
//! * incrementally via [`NeighborTable::insert`]/[`NeighborTable::remove`],
//!   which the join/leave protocols in `rekey-proto` use.
//!
//! ```
//! use rekey_id::{IdSpec, UserId};
//! use rekey_net::{MatrixNetwork, PlanetLabParams, HostId};
//! use rekey_table::{oracle, Member, PrimaryPolicy, check_consistency};
//!
//! let spec = IdSpec::new(2, 4)?;
//! let mut rng = rekey_sim_compat_rng();
//! # fn rekey_sim_compat_rng() -> impl rand::Rng {
//! #     use rand::SeedableRng; rand::rngs::StdRng::seed_from_u64(5)
//! # }
//! let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
//! let members: Vec<Member> = [[0u16, 1], [2, 3], [2, 0]]
//!     .iter()
//!     .enumerate()
//!     .map(|(h, d)| Member {
//!         id: UserId::new(&spec, d.to_vec()).unwrap(),
//!         host: HostId(h),
//!         joined_at: 0,
//!     })
//!     .collect();
//! let tables = oracle::build_all_tables(&spec, &members, &net, 4, PrimaryPolicy::SmallestRtt);
//! check_consistency(&spec, &members, &tables, 4)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod consistency;
mod entry;
pub mod oracle;
mod server;
mod table;

pub use consistency::{check_consistency, ConsistencyViolation};
pub use entry::{Member, NeighborRecord, TableEntry};
pub use server::ServerTable;
pub use table::{NeighborTable, PrimaryPolicy};
