//! Global-knowledge ("oracle") construction of consistent neighbor tables.
//!
//! The paper relies on the Silk join protocol [15, 12] to build consistent
//! tables in a distributed fashion; its simulations simplify the protocol
//! "to improve simulation efficiency" (§4). We do the same: the oracle
//! builder constructs, from global membership and the RTT model, exactly the
//! tables a converged Silk run would produce — every `(i, j)`-entry holds
//! the `min(K, m)` members of the `(i, j)`-ID subtree closest to the owner.
//! K-consistency of the result is guaranteed by construction and checked by
//! [`crate::check_consistency`] in tests.

use rekey_id::IdSpec;
use rekey_net::{HostId, Network};

use crate::entry::{Member, NeighborRecord};
use crate::server::ServerTable;
use crate::table::{NeighborTable, PrimaryPolicy};

/// Builds the neighbor table of one member from global membership.
///
/// `members` must not contain duplicate IDs; the owner may or may not be in
/// the list (it is skipped).
pub fn build_table(
    spec: &IdSpec,
    owner: &Member,
    members: &[Member],
    net: &impl Network,
    k: usize,
    policy: PrimaryPolicy,
) -> NeighborTable {
    let mut table = NeighborTable::new(spec, owner.id.clone(), k, policy);
    // `TableEntry::insert` keeps the K smallest-RTT records per entry, so a
    // single pass suffices.
    for m in members {
        if m.id == owner.id {
            continue;
        }
        let rtt = net.rtt(owner.host, m.host);
        table.insert(NeighborRecord {
            member: m.clone(),
            rtt,
        });
    }
    table
}

/// Builds every member's neighbor table from global membership.
pub fn build_all_tables(
    spec: &IdSpec,
    members: &[Member],
    net: &impl Network,
    k: usize,
    policy: PrimaryPolicy,
) -> Vec<NeighborTable> {
    members
        .iter()
        .map(|owner| build_table(spec, owner, members, net, k, policy))
        .collect()
}

/// Builds the key server's single-row table: per `(0, j)`-entry, the `K`
/// members with digit `j` closest to the server (§2.2).
pub fn build_server_table(
    spec: &IdSpec,
    members: &[Member],
    server_host: HostId,
    net: &impl Network,
    k: usize,
) -> ServerTable {
    let mut table = ServerTable::new(spec, k);
    for m in members {
        let rtt = net.rtt(server_host, m.host);
        table.insert(NeighborRecord {
            member: m.clone(),
            rtt,
        });
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_consistency;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rekey_id::UserId;
    use rekey_net::{MatrixNetwork, PlanetLabParams};

    fn random_members(spec: &IdSpec, n: usize, hosts: usize, rng: &mut impl Rng) -> Vec<Member> {
        let mut members = Vec::new();
        let mut used = std::collections::HashSet::new();
        while members.len() < n {
            let id = UserId::from_index(spec, rng.gen_range(0..spec.id_space()));
            if used.insert(id.clone()) {
                members.push(Member {
                    id,
                    host: HostId(members.len() % hosts),
                    joined_at: members.len() as u64,
                });
            }
        }
        members
    }

    #[test]
    fn oracle_tables_are_k_consistent() {
        let spec = IdSpec::new(3, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        for k in [1, 2, 4] {
            let members = random_members(&spec, 12, net.host_count(), &mut rng);
            let tables = build_all_tables(&spec, &members, &net, k, PrimaryPolicy::SmallestRtt);
            check_consistency(&spec, &members, &tables, k).expect("oracle tables consistent");
        }
    }

    #[test]
    fn entries_hold_closest_neighbors() {
        let spec = IdSpec::new(2, 4).unwrap();
        // Hand-built RTTs: host 0 is owner; hosts 1..=3 carry IDs in the
        // same (0,1)-subtree with RTTs 30, 10, 20.
        let rtt = vec![
            vec![0, 30, 10, 20],
            vec![30, 0, 5, 5],
            vec![10, 5, 0, 5],
            vec![20, 5, 5, 0],
        ];
        let net = MatrixNetwork::from_matrix(rtt, vec![0; 4]);
        let ids = [[0u16, 0], [1, 0], [1, 1], [1, 2]];
        let members: Vec<Member> = ids
            .iter()
            .enumerate()
            .map(|(i, d)| Member {
                id: UserId::new(&spec, d.to_vec()).unwrap(),
                host: HostId(i),
                joined_at: 0,
            })
            .collect();
        let t = build_table(
            &spec,
            &members[0],
            &members,
            &net,
            2,
            PrimaryPolicy::SmallestRtt,
        );
        let entry = t.entry(0, 1);
        assert_eq!(entry.len(), 2);
        assert_eq!(t.primary(0, 1).unwrap().member.host, HostId(2)); // rtt 10
        assert!(!entry.contains(&members[1].id)); // rtt 30 evicted
    }

    #[test]
    fn server_table_covers_all_populated_digits() {
        let spec = IdSpec::new(2, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let members = random_members(&spec, 10, net.host_count() - 1, &mut rng);
        let server_host = HostId(net.host_count() - 1);
        let st = build_server_table(&spec, &members, server_host, &net, 4);
        let mut digits: Vec<u16> = members.iter().map(|m| m.id.digit(0)).collect();
        digits.sort_unstable();
        digits.dedup();
        let present: Vec<u16> = st.primaries().map(|(j, _)| j).collect();
        assert_eq!(present, digits);
    }
}
