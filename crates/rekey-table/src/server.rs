//! The key server's single-row neighbor table.

use rekey_id::IdSpec;

use crate::entry::{NeighborRecord, TableEntry};

/// The key server's neighbor table (§2.2): a single row of `B` entries.
///
/// "Among all the users whose IDs have the prefix `[j]`, the key server
/// chooses the `K` (or all, if the total number of such users is less than
/// `K`) users who have the smallest RTTs to the key server as its
/// `(0, j)`-neighbors."
#[derive(Debug, Clone)]
pub struct ServerTable {
    spec: IdSpec,
    k: usize,
    entries: Vec<TableEntry>,
}

impl ServerTable {
    /// Creates an empty server table with per-entry capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(spec: &IdSpec, k: usize) -> ServerTable {
        assert!(k > 0, "entry capacity K must be positive");
        ServerTable {
            spec: *spec,
            k,
            entries: (0..spec.base()).map(|_| TableEntry::new()).collect(),
        }
    }

    /// The ID-space specification.
    pub fn spec(&self) -> &IdSpec {
        &self.spec
    }

    /// Per-entry capacity `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `(0, j)`-entry.
    ///
    /// # Panics
    ///
    /// Panics if `j >= B`.
    pub fn entry(&self, j: u16) -> &TableEntry {
        &self.entries[usize::from(j)]
    }

    /// Inserts a user record; its entry is determined by the user's 0th
    /// digit. `record.rtt` must be the RTT between the user and the key
    /// server.
    pub fn insert(&mut self, record: NeighborRecord) -> bool {
        let j = usize::from(record.member.id.digit(0));
        self.entries[j].insert(record, self.k)
    }

    /// Removes a user wherever stored; returns `true` if present.
    pub fn remove(&mut self, id: &rekey_id::UserId) -> bool {
        self.entries[usize::from(id.digit(0))].remove(id)
    }

    /// The primary `(0, j)`-neighbor (smallest RTT to the server).
    pub fn primary(&self, j: u16) -> Option<&NeighborRecord> {
        self.entries[usize::from(j)].primary()
    }

    /// Iterates over `(j, primary)` for all non-empty entries.
    pub fn primaries(&self) -> impl Iterator<Item = (u16, &NeighborRecord)> + '_ {
        (0..self.spec.base()).filter_map(move |j| self.primary(j).map(|r| (j, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Member;
    use rekey_id::UserId;
    use rekey_net::HostId;

    fn spec() -> IdSpec {
        IdSpec::new(2, 4).unwrap()
    }

    fn rec(digits: [u16; 2], rtt: u64) -> NeighborRecord {
        NeighborRecord {
            member: Member {
                id: UserId::new(&spec(), digits.to_vec()).unwrap(),
                host: HostId(0),
                joined_at: 0,
            },
            rtt,
        }
    }

    #[test]
    fn routes_by_zeroth_digit() {
        let mut t = ServerTable::new(&spec(), 2);
        assert!(t.insert(rec([0, 1], 10)));
        assert!(t.insert(rec([3, 1], 20)));
        assert_eq!(t.entry(0).len(), 1);
        assert_eq!(t.entry(3).len(), 1);
        assert!(t.entry(1).is_empty());
        assert_eq!(t.primaries().count(), 2);
    }

    #[test]
    fn keeps_k_closest() {
        let mut t = ServerTable::new(&spec(), 2);
        t.insert(rec([0, 0], 30));
        t.insert(rec([0, 1], 10));
        t.insert(rec([0, 2], 20));
        assert_eq!(t.entry(0).len(), 2);
        assert_eq!(t.primary(0).unwrap().rtt, 10);
        assert!(!t.entry(0).contains(&rec([0, 0], 0).member.id));
    }

    #[test]
    fn remove_by_id() {
        let mut t = ServerTable::new(&spec(), 2);
        t.insert(rec([2, 2], 5));
        assert!(t.remove(&rec([2, 2], 0).member.id));
        assert!(t.entry(2).is_empty());
    }
}
