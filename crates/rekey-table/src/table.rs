//! Per-user neighbor tables (`D` rows × `B` entries).

use rekey_id::{IdSpec, UserId};

use crate::entry::{NeighborRecord, TableEntry};

/// How a table entry's *primary* neighbor is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrimaryPolicy {
    /// Smallest RTT (the paper's default, §2.2).
    #[default]
    SmallestRtt,
    /// Smallest RTT everywhere except the `(D − 2)`th row, where the
    /// earliest-joined neighbor is primary so that rekey messages reach
    /// bottom-cluster *leaders* (cluster rekeying heuristic, Appendix B
    /// footnote 8).
    EarliestJoinAtBottom,
}

/// A user's neighbor table: `D` rows of `B` entries supporting hypercube
/// routing (§2.2).
///
/// The `(i, j)`-entry contains up to `K` neighbors drawn from the owner's
/// `(i, j)`-ID subtree; the entry with `j == owner.ID[i]` is structurally
/// empty (those members live in deeper rows).
///
/// ```
/// use rekey_id::{IdSpec, UserId};
/// use rekey_net::HostId;
/// use rekey_table::{Member, NeighborRecord, NeighborTable, PrimaryPolicy};
///
/// let spec = IdSpec::new(2, 4)?;
/// let owner = UserId::new(&spec, vec![1, 0])?;
/// let mut table = NeighborTable::new(&spec, owner, 4, PrimaryPolicy::SmallestRtt);
/// let peer = Member { id: UserId::new(&spec, vec![3, 2])?, host: HostId(9), joined_at: 0 };
/// table.insert(NeighborRecord { member: peer.clone(), rtt: 12_000 });
/// // The peer differs at digit 0 with value 3 ⇒ it lives in entry (0, 3).
/// assert_eq!(table.primary(0, 3).unwrap().member.id, peer.id);
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NeighborTable {
    spec: IdSpec,
    owner: UserId,
    k: usize,
    policy: PrimaryPolicy,
    rows: Vec<Vec<TableEntry>>,
    /// Per row, the sorted columns whose entries are non-empty. Row
    /// enumeration ([`Self::primaries_in_row`], and through it the rekey
    /// transports' `FORWARD` loops) walks only these instead of probing
    /// all `B` columns — with sparse deep rows that is the difference
    /// between O(D·B) and O(neighbors) per member.
    occupied: Vec<Vec<u16>>,
}

impl NeighborTable {
    /// Creates an empty table for `owner`, with per-entry capacity `k` (the
    /// paper's `K`; `K = 4` in the simulations).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `owner` does not match `spec`.
    pub fn new(spec: &IdSpec, owner: UserId, k: usize, policy: PrimaryPolicy) -> NeighborTable {
        assert!(k > 0, "entry capacity K must be positive");
        assert_eq!(
            owner.depth(),
            spec.depth(),
            "owner ID must match the spec depth"
        );
        let rows = (0..spec.depth())
            .map(|_| (0..spec.base()).map(|_| TableEntry::new()).collect())
            .collect();
        let occupied = vec![Vec::new(); spec.depth()];
        NeighborTable {
            spec: *spec,
            owner,
            k,
            policy,
            rows,
            occupied,
        }
    }

    /// The owner's user ID.
    pub fn owner(&self) -> &UserId {
        &self.owner
    }

    /// The ID-space specification.
    pub fn spec(&self) -> &IdSpec {
        &self.spec
    }

    /// Per-entry capacity `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The primary-selection policy (wire codecs rebuild tables from it).
    pub fn policy(&self) -> PrimaryPolicy {
        self.policy
    }

    /// The `(i, j)`-entry.
    ///
    /// # Panics
    ///
    /// Panics if `i >= D` or `j >= B`.
    pub fn entry(&self, i: usize, j: u16) -> &TableEntry {
        &self.rows[i][usize::from(j)]
    }

    /// The row/column of the owner's table where `id` belongs:
    /// `(c, id[c])` with `c` the length of the longest common prefix of
    /// owner and `id`. Returns `None` for the owner itself.
    pub fn slot_for(&self, id: &UserId) -> Option<(usize, u16)> {
        let c = self.owner.common_prefix_len(id);
        if c == self.spec.depth() {
            None
        } else {
            Some((c, id.digit(c)))
        }
    }

    /// Inserts a neighbor into its unique `(i, j)`-entry. Returns `true` if
    /// the record was stored (it may be rejected when the entry is full of
    /// closer neighbors, or when the record is the owner or a duplicate).
    pub fn insert(&mut self, record: NeighborRecord) -> bool {
        match self.slot_for(&record.member.id) {
            None => false,
            Some((i, j)) => {
                let stored = self.rows[i][usize::from(j)].insert(record, self.k);
                if stored {
                    if let Err(pos) = self.occupied[i].binary_search(&j) {
                        self.occupied[i].insert(pos, j);
                    }
                }
                stored
            }
        }
    }

    /// Removes a neighbor wherever it is stored; returns `true` if present.
    pub fn remove(&mut self, id: &UserId) -> bool {
        match self.slot_for(id) {
            None => false,
            Some((i, j)) => {
                let removed = self.rows[i][usize::from(j)].remove(id);
                if removed && self.rows[i][usize::from(j)].is_empty() {
                    if let Ok(pos) = self.occupied[i].binary_search(&j) {
                        self.occupied[i].remove(pos);
                    }
                }
                removed
            }
        }
    }

    /// The primary `(i, j)`-neighbor under this table's
    /// [`PrimaryPolicy`].
    pub fn primary(&self, i: usize, j: u16) -> Option<&NeighborRecord> {
        let entry = self.entry(i, j);
        match self.policy {
            PrimaryPolicy::SmallestRtt => entry.primary(),
            PrimaryPolicy::EarliestJoinAtBottom => {
                if self.spec.depth() >= 2 && i == self.spec.depth() - 2 {
                    entry.earliest_joined()
                } else {
                    entry.primary()
                }
            }
        }
    }

    /// Iterates over the primary neighbors of row `i` (all `j`), in
    /// increasing `j` order.
    pub fn primaries_in_row(&self, i: usize) -> impl Iterator<Item = (u16, &NeighborRecord)> + '_ {
        self.occupied[i]
            .iter()
            .filter_map(move |&j| self.primary(i, j).map(|r| (j, r)))
    }

    /// Iterates over the non-empty entries of row `i` in increasing `j`
    /// order, walking the occupancy index rather than probing all `B`
    /// columns. Forwarding fail-over (§2.3) uses this to scan each
    /// `(i, j)` bucket for the first live neighbor.
    pub fn entries_in_row(&self, i: usize) -> impl Iterator<Item = (u16, &TableEntry)> + '_ {
        self.occupied[i]
            .iter()
            .map(move |&j| (j, &self.rows[i][usize::from(j)]))
    }

    /// Evicts every stored record for which `dead` returns `true` (e.g.
    /// neighbors that stopped answering heartbeat pings, §3.2), keeping
    /// the row-occupancy index consistent. Returns the evicted user IDs in
    /// table order.
    pub fn evict_where(&mut self, mut dead: impl FnMut(&NeighborRecord) -> bool) -> Vec<UserId> {
        let victims: Vec<UserId> = self
            .iter_all()
            .filter(|r| dead(r))
            .map(|r| r.member.id.clone())
            .collect();
        for id in &victims {
            self.remove(id);
        }
        victims
    }

    /// Iterates over every stored neighbor record.
    pub fn iter_all(&self) -> impl Iterator<Item = &NeighborRecord> {
        self.rows
            .iter()
            .flat_map(|row| row.iter().flat_map(|e| e.iter()))
    }

    /// Total number of stored neighbor records.
    pub fn neighbor_count(&self) -> usize {
        self.iter_all().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_net::HostId;

    use crate::entry::Member;

    fn spec() -> IdSpec {
        IdSpec::new(3, 4).unwrap()
    }

    fn uid(digits: [u16; 3]) -> UserId {
        UserId::new(&spec(), digits.to_vec()).unwrap()
    }

    fn rec(digits: [u16; 3], rtt: u64, joined_at: u64) -> NeighborRecord {
        NeighborRecord {
            member: Member {
                id: uid(digits),
                host: HostId(0),
                joined_at,
            },
            rtt,
        }
    }

    #[test]
    fn slots_follow_common_prefix() {
        let t = NeighborTable::new(&spec(), uid([1, 2, 3]), 4, PrimaryPolicy::SmallestRtt);
        assert_eq!(t.slot_for(&uid([0, 0, 0])), Some((0, 0)));
        assert_eq!(t.slot_for(&uid([1, 0, 0])), Some((1, 0)));
        assert_eq!(t.slot_for(&uid([1, 2, 0])), Some((2, 0)));
        assert_eq!(t.slot_for(&uid([1, 2, 3])), None);
    }

    #[test]
    fn insert_places_and_rejects_owner() {
        let mut t = NeighborTable::new(&spec(), uid([1, 2, 3]), 4, PrimaryPolicy::SmallestRtt);
        assert!(t.insert(rec([3, 0, 0], 10, 0)));
        assert!(t.insert(rec([3, 1, 0], 5, 0)));
        assert!(
            !t.insert(rec([1, 2, 3], 1, 0)),
            "owner may not be its own neighbor"
        );
        assert_eq!(t.entry(0, 3).len(), 2);
        assert_eq!(t.primary(0, 3).unwrap().rtt, 5);
        assert_eq!(t.neighbor_count(), 2);
    }

    #[test]
    fn own_digit_column_stays_empty() {
        let mut t = NeighborTable::new(&spec(), uid([1, 2, 3]), 4, PrimaryPolicy::SmallestRtt);
        // A member sharing digit 0 goes to row 1, not to entry (0, 1).
        assert!(t.insert(rec([1, 0, 0], 10, 0)));
        assert!(t.entry(0, 1).is_empty());
        assert_eq!(t.entry(1, 0).len(), 1);
    }

    #[test]
    fn remove_round_trips() {
        let mut t = NeighborTable::new(&spec(), uid([1, 2, 3]), 4, PrimaryPolicy::SmallestRtt);
        t.insert(rec([2, 2, 2], 9, 0));
        assert!(t.remove(&uid([2, 2, 2])));
        assert!(!t.remove(&uid([2, 2, 2])));
        assert_eq!(t.neighbor_count(), 0);
    }

    #[test]
    fn bottom_row_policy_prefers_earliest_join() {
        let mut t = NeighborTable::new(
            &spec(),
            uid([1, 2, 3]),
            4,
            PrimaryPolicy::EarliestJoinAtBottom,
        );
        // Row D-2 == 1 for D == 3.
        t.insert(rec([1, 0, 0], 5, 500));
        t.insert(rec([1, 0, 1], 50, 100));
        assert_eq!(t.primary(1, 0).unwrap().member.joined_at, 100);
        // Other rows keep RTT order.
        t.insert(rec([2, 0, 0], 50, 100));
        t.insert(rec([2, 0, 1], 5, 500));
        assert_eq!(t.primary(0, 2).unwrap().rtt, 5);
    }

    #[test]
    fn primaries_in_row_skips_empty_entries() {
        let mut t = NeighborTable::new(&spec(), uid([1, 2, 3]), 4, PrimaryPolicy::SmallestRtt);
        t.insert(rec([0, 0, 0], 10, 0));
        t.insert(rec([3, 0, 0], 20, 0));
        let row0: Vec<u16> = t.primaries_in_row(0).map(|(j, _)| j).collect();
        assert_eq!(row0, vec![0, 3]);
    }

    /// The occupancy index must agree with a brute-force scan of all
    /// `B` columns: same columns, sorted, none empty.
    fn assert_occupancy_consistent(t: &NeighborTable) {
        for i in 0..t.spec().depth() {
            let indexed: Vec<u16> = t.entries_in_row(i).map(|(j, _)| j).collect();
            let brute: Vec<u16> = (0..t.spec().base())
                .filter(|&j| !t.entry(i, j).is_empty())
                .collect();
            assert_eq!(indexed, brute, "row {i} occupancy index diverged");
            assert!(indexed.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
            for (_, e) in t.entries_in_row(i) {
                assert!(!e.is_empty(), "row {i} indexes an empty entry");
            }
        }
    }

    #[test]
    fn evict_where_removes_matches_and_keeps_occupancy_index() {
        let mut t = NeighborTable::new(&spec(), uid([1, 2, 3]), 2, PrimaryPolicy::SmallestRtt);
        t.insert(rec([0, 0, 0], 10, 0));
        t.insert(rec([0, 1, 0], 20, 0));
        t.insert(rec([3, 0, 0], 30, 0));
        t.insert(rec([1, 0, 0], 40, 0));
        t.insert(rec([1, 2, 0], 50, 0));
        assert_occupancy_consistent(&t);

        // Evict everything slower than 25: empties entry (0, 3) but only
        // thins entry (0, 0).
        let gone = t.evict_where(|r| r.rtt > 25);
        assert_eq!(gone.len(), 3);
        assert!(gone.contains(&uid([3, 0, 0])));
        assert_eq!(t.neighbor_count(), 2);
        assert_occupancy_consistent(&t);
        let row0: Vec<u16> = t.entries_in_row(0).map(|(j, _)| j).collect();
        assert_eq!(row0, vec![0], "entry (0,3) must leave the index");

        // Nothing matches: no-op, index untouched.
        assert!(t.evict_where(|_| false).is_empty());
        assert_occupancy_consistent(&t);

        // Refill an evicted slot: the column re-enters the index in order.
        assert!(t.insert(rec([3, 1, 0], 5, 0)));
        assert_occupancy_consistent(&t);
    }

    #[test]
    fn eviction_via_remove_churn_keeps_occupancy_index() {
        let mut t = NeighborTable::new(&spec(), uid([0, 0, 0]), 2, PrimaryPolicy::SmallestRtt);
        let peers = [
            [1, 0, 0],
            [1, 1, 0],
            [2, 0, 0],
            [3, 0, 0],
            [0, 1, 0],
            [0, 2, 0],
            [0, 0, 1],
            [0, 0, 3],
        ];
        for (n, p) in peers.iter().enumerate() {
            t.insert(rec(*p, 10 + n as u64, 0));
            assert_occupancy_consistent(&t);
        }
        for p in peers.iter().step_by(2) {
            assert!(t.remove(&uid(*p)));
            assert_occupancy_consistent(&t);
        }
        // Re-insert into partially emptied rows.
        t.insert(rec([2, 2, 2], 1, 0));
        t.insert(rec([0, 0, 1], 2, 0));
        assert_occupancy_consistent(&t);
    }
}
