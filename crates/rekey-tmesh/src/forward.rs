//! The `FORWARD` routine of Fig. 2: who sends what to whom.
//!
//! Every multicast message carries a `forward_level` field. The sender is at
//! forwarding level 0; a user receiving a message with `forward_level = i`
//! is at forwarding level `i`. The routine is:
//!
//! ```text
//! FORWARD(msg):
//!   level ← msg.forward_level
//!   if level = D then return
//!   if the caller is the key server then            // level = 0
//!     msg.forward_level ← level + 1
//!     send a copy of msg to each (0, j)-primary neighbor, 0 ≤ j < B
//!   else for i ← level to D − 1 do
//!     msg.forward_level ← i + 1
//!     send a copy of msg to each (i, j)-primary neighbor, 0 ≤ j < B
//! ```
//!
//! These functions are pure table lookups; the event-driven session driver
//! (`TmeshGroup::multicast`) schedules the actual sends.

use rekey_table::{NeighborRecord, NeighborTable, ServerTable};

/// One outgoing copy produced by `FORWARD`: the receiving neighbor, the row
/// `s` it was taken from (it is the `(s, j)`-primary neighbor of the caller)
/// and the `forward_level` value (`s + 1`) stamped on the copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop<'a> {
    /// Row of the caller's table the neighbor was taken from.
    pub row: usize,
    /// Column (digit) of the entry.
    pub column: u16,
    /// The receiving primary neighbor.
    pub neighbor: &'a NeighborRecord,
    /// `forward_level` carried by the copy: `row + 1`.
    pub forward_level: usize,
}

impl Hop<'_> {
    /// The `(s, j)`-ID-subtree prefix this hop serves.
    ///
    /// The receiving neighbor is the caller's `(row, column)`-primary, so
    /// its level-`row + 1` prefix names exactly the subtree the copy is
    /// responsible for: every member that can receive the message through
    /// this hop lies under that prefix (Theorem 2). This is the split key
    /// for `REKEY-MESSAGE-SPLIT` (Fig. 5).
    pub fn prefix(&self) -> rekey_id::IdPrefix {
        self.neighbor.member.id.prefix(self.row + 1)
    }
}

/// Next hops for the key server starting a multicast (lines 3–5 of Fig. 2):
/// one copy per `(0, j)`-primary neighbor, with `forward_level = 1`.
pub fn server_next_hops(table: &ServerTable) -> Vec<Hop<'_>> {
    table
        .primaries()
        .map(|(j, neighbor)| Hop {
            row: 0,
            column: j,
            neighbor,
            forward_level: 1,
        })
        .collect()
}

/// Like [`server_next_hops`], but skipping failed neighbors: per entry, the
/// first neighbor for which `alive` returns `true` receives the copy (the
/// §2.3 fail-over: "it can simply forward messages to another neighbor in
/// the same table entry as the failed or congested neighbor"). An entry
/// whose neighbors are all down produces no hop.
pub fn server_next_hops_with<'t>(
    table: &'t ServerTable,
    alive: &dyn Fn(&rekey_id::UserId) -> bool,
) -> Vec<Hop<'t>> {
    (0..table.spec().base())
        .filter_map(|j| {
            table
                .entry(j)
                .iter()
                .find(|r| alive(&r.member.id))
                .map(|neighbor| Hop {
                    row: 0,
                    column: j,
                    neighbor,
                    forward_level: 1,
                })
        })
        .collect()
}

/// Next hops for a user at forwarding `level` (lines 2 and 6–9 of Fig. 2):
/// for every row `i ∈ [level, D)`, one copy per `(i, j)`-primary neighbor,
/// with `forward_level = i + 1`. A user at level `D` forwards nothing.
pub fn user_next_hops(table: &NeighborTable, level: usize) -> Vec<Hop<'_>> {
    let depth = table.spec().depth();
    if level >= depth {
        return Vec::new();
    }
    let mut hops = Vec::new();
    for row in level..depth {
        for (column, neighbor) in table.primaries_in_row(row) {
            hops.push(Hop {
                row,
                column,
                neighbor,
                forward_level: row + 1,
            });
        }
    }
    hops
}

/// Like [`user_next_hops`], but skipping failed neighbors (§2.3 fail-over):
/// per entry, the first live neighbor in RTT order receives the copy, so a
/// stale record (a silently crashed primary not yet evicted) falls back to
/// the next neighbor in the same `(i, j)` bucket. Walks the table's
/// row-occupancy index, so the cost is O(stored neighbors) rather than
/// O(D·B). Note: fail-over ranks by RTT regardless of the table's
/// [`rekey_table::PrimaryPolicy`]; combine with the cluster heuristic's
/// leader-primary policy only when leaders are known to be alive.
pub fn user_next_hops_with<'t>(
    table: &'t NeighborTable,
    level: usize,
    alive: &dyn Fn(&rekey_id::UserId) -> bool,
) -> Vec<Hop<'t>> {
    let depth = table.spec().depth();
    if level >= depth {
        return Vec::new();
    }
    let mut hops = Vec::new();
    for row in level..depth {
        for (column, entry) in table.entries_in_row(row) {
            if let Some(neighbor) = entry.iter().find(|r| alive(&r.member.id)) {
                hops.push(Hop {
                    row,
                    column,
                    neighbor,
                    forward_level: row + 1,
                });
            }
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::{IdSpec, UserId};
    use rekey_net::HostId;
    use rekey_table::{Member, PrimaryPolicy};

    fn spec() -> IdSpec {
        IdSpec::new(2, 4).unwrap()
    }

    fn member(digits: [u16; 2], host: usize) -> Member {
        Member {
            id: UserId::new(&spec(), digits.to_vec()).unwrap(),
            host: HostId(host),
            joined_at: 0,
        }
    }

    fn rec(m: &Member, rtt: u64) -> rekey_table::NeighborRecord {
        rekey_table::NeighborRecord {
            member: m.clone(),
            rtt,
        }
    }

    #[test]
    fn server_sends_one_copy_per_populated_digit() {
        let mut st = ServerTable::new(&spec(), 2);
        let a = member([0, 0], 0);
        let b = member([0, 1], 1);
        let c = member([2, 0], 2);
        st.insert(rec(&a, 10));
        st.insert(rec(&b, 5));
        st.insert(rec(&c, 7));
        let hops = server_next_hops(&st);
        assert_eq!(hops.len(), 2);
        assert!(hops.iter().all(|h| h.forward_level == 1 && h.row == 0));
        // Primary of column 0 is b (smaller RTT).
        assert_eq!(hops[0].neighbor.member.id, b.id);
        assert_eq!(hops[1].neighbor.member.id, c.id);
    }

    #[test]
    fn user_forwards_rows_from_level_down() {
        let owner = member([0, 0], 0);
        let sibling = member([0, 1], 1);
        let far = member([2, 0], 2);
        let mut t = NeighborTable::new(&spec(), owner.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        t.insert(rec(&sibling, 4));
        t.insert(rec(&far, 9));
        // At level 0 (data sender) the user covers both rows.
        let hops = user_next_hops(&t, 0);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].row, 0);
        assert_eq!(hops[0].forward_level, 1);
        assert_eq!(hops[0].neighbor.member.id, far.id);
        assert_eq!(hops[1].row, 1);
        assert_eq!(hops[1].forward_level, 2);
        // At level 1 only row 1 remains.
        let hops = user_next_hops(&t, 1);
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].neighbor.member.id, sibling.id);
        // At level D the user forwards nothing (line 2 of Fig. 2).
        assert!(user_next_hops(&t, 2).is_empty());
    }

    #[test]
    fn failover_falls_back_within_the_same_bucket() {
        let owner = member([0, 0], 0);
        let near = member([2, 1], 1); // (0, 2) bucket, rtt 3 → primary
        let backup = member([2, 3], 2); // (0, 2) bucket, rtt 8
        let sibling = member([0, 1], 3); // (1, 1) bucket
        let mut t = NeighborTable::new(&spec(), owner.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        t.insert(rec(&near, 3));
        t.insert(rec(&backup, 8));
        t.insert(rec(&sibling, 5));

        // All alive: the bucket primary carries the copy.
        let hops = user_next_hops_with(&t, 0, &|_| true);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].neighbor.member.id, near.id);

        // The primary is a stale record (crashed, not yet evicted): the
        // copy falls back to the next neighbor in the same (0, 2) bucket.
        let dead = near.id.clone();
        let hops = user_next_hops_with(&t, 0, &move |id| *id != dead);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].row, 0);
        assert_eq!(hops[0].column, 2);
        assert_eq!(hops[0].neighbor.member.id, backup.id);

        // Whole bucket down: the entry produces no hop, others unaffected.
        let (d1, d2) = (near.id.clone(), backup.id.clone());
        let hops = user_next_hops_with(&t, 0, &move |id| *id != d1 && *id != d2);
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].neighbor.member.id, sibling.id);

        // Occupancy-index walk agrees with the plain primary walk when
        // everyone is alive.
        let plain: Vec<_> = user_next_hops(&t, 0)
            .into_iter()
            .map(|h| (h.row, h.column, h.neighbor.member.id.clone()))
            .collect();
        let with: Vec<_> = user_next_hops_with(&t, 0, &|_| true)
            .into_iter()
            .map(|h| (h.row, h.column, h.neighbor.member.id.clone()))
            .collect();
        assert_eq!(plain, with);
    }

    #[test]
    fn hop_prefix_names_the_served_subtree() {
        let owner = member([0, 0], 0);
        let sibling = member([0, 1], 1);
        let far = member([2, 0], 2);
        let mut t = NeighborTable::new(&spec(), owner.id.clone(), 2, PrimaryPolicy::SmallestRtt);
        t.insert(rec(&sibling, 4));
        t.insert(rec(&far, 9));
        for hop in user_next_hops(&t, 0) {
            let prefix = hop.prefix();
            assert_eq!(prefix.len(), hop.row + 1);
            assert!(prefix.is_prefix_of_id(&hop.neighbor.member.id));
            // Row s hops stay inside the owner's level-s subtree and differ
            // from the owner at digit s (that is what makes it an (s, j)
            // neighbor).
            assert_eq!(prefix.digits()[..hop.row], owner.id.digits()[..hop.row]);
            assert_eq!(prefix.digits()[hop.row], hop.column);
            assert_ne!(prefix.digits()[hop.row], owner.id.digits()[hop.row]);
        }
    }
}
