//! T-mesh: the paper's application-layer multicast scheme (§2.3).
//!
//! Given K-consistent neighbor tables (`rekey-table`), the tables *embed*
//! multicast trees rooted at the key server and at every user. A session
//! runs the `FORWARD` routine of Fig. 2 on the discrete event engine
//! (`rekey-sim`):
//!
//! * [`forward`] — the pure next-hop computation (`forward_level` logic);
//! * [`TmeshGroup`] / [`MulticastOutcome`] — event-driven sessions with full
//!   delivery, stress and transmission accounting;
//! * [`metrics`] — user stress, application-layer delay, RDP and the
//!   inverse-CDF helpers used by the paper's figures.
//!
//! Theorem 1 (exactly-once delivery under 1-consistency) is checked by
//! [`MulticastOutcome::exactly_once`] and exercised in this crate's tests;
//! the prefix structure of the embedded trees (Lemmas 1, 2 and 4) is
//! verified in the integration tests.
//!
//! ```
//! use rekey_id::{IdSpec, UserId};
//! use rekey_net::{HostId, MatrixNetwork, PlanetLabParams};
//! use rekey_table::{Member, PrimaryPolicy};
//! use rekey_tmesh::{Source, TmeshGroup};
//!
//! # use rand::SeedableRng;
//! let spec = IdSpec::new(2, 4)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
//! let members: Vec<Member> = [[0u16, 1], [1, 0], [1, 2], [3, 3]]
//!     .iter()
//!     .enumerate()
//!     .map(|(h, d)| Member {
//!         id: UserId::new(&spec, d.to_vec()).unwrap(),
//!         host: HostId(h),
//!         joined_at: 0,
//!     })
//!     .collect();
//! let group = TmeshGroup::build(&spec, members, HostId(15), &net, 4, PrimaryPolicy::SmallestRtt);
//! let outcome = group.multicast(&net, Source::Server);
//! assert!(outcome.exactly_once().is_ok());
//! # Ok::<(), rekey_id::IdError>(())
//! ```

pub mod forward;
pub mod metrics;
mod session;

pub use session::{Delivery, MulticastOutcome, Source, TmeshGroup, Transmission};
