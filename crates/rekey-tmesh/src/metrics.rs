//! Per-user latency/stress metrics and distribution helpers (§4.1).
//!
//! The paper evaluates every multicast scheme with three per-user metrics:
//!
//! * **user stress** — messages forwarded by the user in a session;
//! * **application-layer delay** — sender-to-user latency over the overlay;
//! * **relative delay penalty (RDP)** — application-layer delay divided by
//!   the one-way unicast delay from the sender to the user.
//!
//! and plots their *inverse cumulative distributions*: a point `(x, y)`
//! means "fraction `x` of users have metric ≤ `y`".

use rekey_metrics::Registry;
use rekey_net::{Micros, Network};

use crate::session::{MulticastOutcome, Source, TmeshGroup};

/// Per-user metrics of one multicast session.
#[derive(Debug, Clone, Default)]
pub struct PathMetrics {
    /// Messages forwarded per user.
    pub stress: Vec<u32>,
    /// Application-layer delay per user (µs); `None` if never reached.
    pub delay: Vec<Option<Micros>>,
    /// Relative delay penalty per user; `None` if never reached. The sender
    /// itself (data sessions) gets stress but no delay/RDP sample.
    pub rdp: Vec<Option<f64>>,
}

impl PathMetrics {
    /// Extracts metrics from a T-mesh session outcome.
    pub fn from_outcome(
        group: &TmeshGroup,
        net: &impl Network,
        outcome: &MulticastOutcome,
    ) -> PathMetrics {
        let sender_host = group.host_of(outcome.source());
        let n = outcome.member_count();
        let mut metrics = PathMetrics {
            stress: Vec::with_capacity(n),
            delay: Vec::with_capacity(n),
            rdp: Vec::with_capacity(n),
        };
        for i in 0..n {
            metrics.stress.push(outcome.user_stress(i));
            if matches!(outcome.source(), Source::User(s) if s == i) {
                metrics.delay.push(None);
                metrics.rdp.push(None);
                continue;
            }
            let delay = outcome.first_delivery(i).map(|d| d.arrival);
            metrics.delay.push(delay);
            metrics.rdp.push(delay.map(|d| {
                let unicast = net.one_way(sender_host, group.members()[i].host).max(1);
                d as f64 / unicast as f64
            }));
        }
        metrics
    }

    /// Records the per-user distributions into `registry` as the
    /// `tmesh_stress` and `tmesh_delay_us` histograms (unreached users
    /// contribute no delay sample), so overlay sessions share the same
    /// snapshot pipeline as the rekey runtime.
    pub fn record_into(&self, registry: &Registry) {
        let stress = registry.histogram("tmesh_stress");
        for &s in &self.stress {
            stress.record(u64::from(s));
        }
        let delay = registry.histogram("tmesh_delay_us");
        for &d in self.delay.iter().flatten() {
            delay.record(d);
        }
    }

    /// Fraction of reached users with RDP strictly below `bound` (the paper
    /// reports e.g. "78% of users have an RDP less than 2").
    pub fn fraction_rdp_below(&self, bound: f64) -> f64 {
        let samples: Vec<f64> = self.rdp.iter().flatten().copied().collect();
        if samples.is_empty() {
            return 0.0;
        }
        samples.iter().filter(|&&r| r < bound).count() as f64 / samples.len() as f64
    }
}

/// Sorts samples ascending — the x-axis-ready form of an inverse CDF plot.
pub fn sorted<T: PartialOrd + Copy>(samples: &[T]) -> Vec<T> {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN-free samples"));
    v
}

/// The `q`-quantile (0 ≤ q ≤ 1) of ascending-`sorted` samples, by the
/// nearest-rank method.
///
/// # Panics
///
/// Panics if `samples` is empty or `q` is outside `[0, 1]`.
pub fn quantile<T: Copy>(sorted_samples: &[T], q: f64) -> T {
    assert!(!sorted_samples.is_empty(), "quantile of empty sample set");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let rank = ((q * sorted_samples.len() as f64).ceil() as usize).max(1) - 1;
    sorted_samples[rank.min(sorted_samples.len() - 1)]
}

/// The paper's percentile helper: `percentile(samples, 80)` is the
/// 80-percentile used in ID assignment step 3 (§3.1.3).
///
/// # Panics
///
/// Panics if `samples` is empty or `p` exceeds 100.
pub fn percentile(samples: &[Micros], p: u8) -> Micros {
    assert!(p <= 100, "percentile must be ≤ 100");
    let s = sorted(samples);
    quantile(&s, f64::from(p) / 100.0)
}

/// Inverse-CDF points `(fraction, value)` at `points` evenly spaced
/// fractions, for TSV output matching the paper's figures.
pub fn inverse_cdf<T: PartialOrd + Copy>(samples: &[T], points: usize) -> Vec<(f64, T)> {
    assert!(points >= 2, "need at least two points");
    let s = sorted(samples);
    if s.is_empty() {
        return Vec::new();
    }
    (0..points)
        .map(|i| {
            let frac = i as f64 / (points - 1) as f64;
            let rank = ((frac * (s.len() - 1) as f64).round()) as usize;
            (frac, s[rank])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let s = sorted(&[5u64, 1, 3, 2, 4]);
        assert_eq!(s, vec![1, 2, 3, 4, 5]);
        assert_eq!(quantile(&s, 0.0), 1);
        assert_eq!(quantile(&s, 0.5), 3);
        assert_eq!(quantile(&s, 0.8), 4);
        assert_eq!(quantile(&s, 1.0), 5);
    }

    #[test]
    fn percentile_matches_paper_usage() {
        // 10 samples; 80-percentile is the 8th smallest.
        let samples: Vec<Micros> = (1..=10).rev().collect();
        assert_eq!(percentile(&samples, 80), 8);
        assert_eq!(percentile(&samples, 100), 10);
        assert_eq!(percentile(&samples, 1), 1);
    }

    #[test]
    fn inverse_cdf_spans_range() {
        let points = inverse_cdf(&[10u32, 20, 30, 40], 5);
        assert_eq!(points.first().unwrap().1, 10);
        assert_eq!(points.last().unwrap().1, 40);
        assert_eq!(points.len(), 5);
        assert!((points[2].0 - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        quantile::<u64>(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50);
    }

    #[test]
    #[should_panic(expected = "percentile must be ≤ 100")]
    fn percentile_rejects_over_100() {
        percentile(&[1, 2, 3], 101);
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&[42], p), 42);
        }
    }

    #[test]
    fn percentile_extremes_hit_min_and_max() {
        // Unsorted input; F = 100 must return the maximum, 0 the minimum.
        let samples: Vec<Micros> = vec![7, 3, 11, 5, 2];
        assert_eq!(percentile(&samples, 100), 11);
        assert_eq!(percentile(&samples, 0), 2);
    }

    #[test]
    fn percentile_is_duplicate_stable() {
        let samples: Vec<Micros> = vec![4, 4, 4, 4];
        for p in [0, 25, 50, 75, 100] {
            assert_eq!(percentile(&samples, p), 4);
        }
    }

    #[test]
    fn fraction_rdp_below_counts_reached_users_only() {
        let m = PathMetrics {
            stress: vec![0; 4],
            delay: vec![Some(1), Some(2), None, Some(3)],
            rdp: vec![Some(1.5), Some(2.5), None, Some(1.9)],
        };
        assert!((m.fraction_rdp_below(2.0) - 2.0 / 3.0).abs() < 1e-9);
    }
}
