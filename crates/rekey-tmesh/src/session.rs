//! Event-driven T-mesh multicast sessions.
//!
//! "A multicast session consists of a sender, a set of receivers, and a
//! message to multicast" (§2.3). For rekey transport the key server is the
//! sender; for data transport a user is. A session runs on the
//! `rekey-sim` discrete event engine: each member is a [`rekey_sim::Node`]
//! that executes `FORWARD` (Fig. 2) on message receipt, and copies travel
//! with one-way network delays.

use std::collections::HashMap;
use std::rc::Rc;

use rekey_id::{IdSpec, UserId};
use rekey_net::{HostId, LinkLoad, Network};
use rekey_sim::{Ctx, Node, NodeId, SimTime, Simulation};
use rekey_table::{oracle, Member, NeighborTable, PrimaryPolicy, ServerTable};

use crate::forward::{
    server_next_hops, server_next_hops_with, user_next_hops, user_next_hops_with,
};

/// The origin of a multicast copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The key server (rekey transport).
    Server,
    /// The user with this member index (data transport).
    User(usize),
}

/// One received copy of the multicast message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Simulated arrival time (µs after the sender started).
    pub arrival: SimTime,
    /// The `forward_level` carried by the copy — the receiver's forwarding
    /// level (Definition 4).
    pub forward_level: usize,
    /// Who transmitted this copy.
    pub from: Source,
}

/// One overlay transmission (for stress and link-load accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Transmitting member.
    pub from: Source,
    /// Receiving member index.
    pub to: usize,
    /// `forward_level` stamped on the copy.
    pub forward_level: usize,
}

/// The complete outcome of one multicast session.
#[derive(Debug, Clone)]
pub struct MulticastOutcome {
    source: Source,
    deliveries: Vec<Vec<Delivery>>,
    forwarded: Vec<u32>,
    server_sent: u32,
    transmissions: Vec<Transmission>,
    finished_at: SimTime,
}

impl MulticastOutcome {
    /// The session's sender.
    pub fn source(&self) -> Source {
        self.source
    }

    /// All copies received by member `i`, in arrival order.
    pub fn deliveries(&self, i: usize) -> &[Delivery] {
        &self.deliveries[i]
    }

    /// The first copy received by member `i`, if any.
    pub fn first_delivery(&self, i: usize) -> Option<&Delivery> {
        self.deliveries[i].first()
    }

    /// Number of members in the session (receivers, plus the sender when it
    /// is a user).
    pub fn member_count(&self) -> usize {
        self.deliveries.len()
    }

    /// The paper's *user stress*: "the total number of messages the user
    /// forwards in a multicast session".
    pub fn user_stress(&self, i: usize) -> u32 {
        self.forwarded[i]
    }

    /// Copies sent by the key server (0 for data sessions).
    pub fn server_sent(&self) -> u32 {
        self.server_sent
    }

    /// Every overlay transmission of the session.
    pub fn transmissions(&self) -> &[Transmission] {
        &self.transmissions
    }

    /// Time the last copy was delivered.
    pub fn finished_at(&self) -> SimTime {
        self.finished_at
    }

    /// Checks Theorem 1: every member except the sender received exactly
    /// one copy. Returns the offending member index on failure.
    pub fn exactly_once(&self) -> Result<(), usize> {
        for (i, d) in self.deliveries.iter().enumerate() {
            let expected = match self.source {
                Source::User(s) if s == i => 0,
                _ => 1,
            };
            if d.len() != expected {
                return Err(i);
            }
        }
        Ok(())
    }
}

/// Message of the T-mesh session protocol: just the `forward_level` field
/// (plus the start stimulus for the sender).
#[derive(Debug, Clone, Copy)]
enum MeshMsg {
    /// External stimulus telling the sender to start the session.
    Start,
    /// A multicast copy with its `forward_level`.
    Copy { forward_level: usize },
}

enum Role {
    Server { table: Rc<ServerTable> },
    User { table: Rc<NeighborTable> },
}

struct MeshNode {
    role: Role,
    index: Rc<HashMap<UserId, usize>>,
    deliveries: Vec<Delivery>,
    forwarded: u32,
    log: Vec<Transmission>,
    me: Source,
    /// `failed[i]` marks member `i` as crashed: it is skipped as a next hop
    /// (the §2.3 fail-over) and never processes messages itself.
    failed: Rc<Vec<bool>>,
}

impl MeshNode {
    fn forward(&mut self, ctx: &mut Ctx<'_, MeshMsg>, level: usize) {
        let index = Rc::clone(&self.index);
        let failed = Rc::clone(&self.failed);
        let any_failed = failed.iter().any(|&f| f);
        let alive = move |id: &UserId| !failed[index[id]];
        let hops: Vec<(UserId, usize)> = match &self.role {
            Role::Server { table } if any_failed => server_next_hops_with(table, &alive)
                .into_iter()
                .map(|h| (h.neighbor.member.id.clone(), h.forward_level))
                .collect(),
            Role::Server { table } => server_next_hops(table)
                .into_iter()
                .map(|h| (h.neighbor.member.id.clone(), h.forward_level))
                .collect(),
            Role::User { table } if any_failed => user_next_hops_with(table, level, &alive)
                .into_iter()
                .map(|h| (h.neighbor.member.id.clone(), h.forward_level))
                .collect(),
            Role::User { table } => user_next_hops(table, level)
                .into_iter()
                .map(|h| (h.neighbor.member.id.clone(), h.forward_level))
                .collect(),
        };
        for (id, forward_level) in hops {
            let to = *self
                .index
                .get(&id)
                .expect("neighbor must be a session member");
            ctx.send(NodeId(to), MeshMsg::Copy { forward_level });
            self.forwarded += 1;
            self.log.push(Transmission {
                from: self.me,
                to,
                forward_level,
            });
        }
    }
}

impl Node for MeshNode {
    type Msg = MeshMsg;

    fn receive(&mut self, ctx: &mut Ctx<'_, MeshMsg>, from: NodeId, msg: MeshMsg) {
        match msg {
            MeshMsg::Start => self.forward(ctx, 0),
            MeshMsg::Copy { forward_level } => {
                let source = if from.0 == self.index.len() {
                    Source::Server
                } else {
                    Source::User(from.0)
                };
                let first = self.deliveries.is_empty();
                self.deliveries.push(Delivery {
                    arrival: ctx.now(),
                    forward_level,
                    from: source,
                });
                // Theorem 1 guarantees a single copy under 1-consistency; if
                // an inconsistent table produces duplicates anyway, we record
                // them but forward only the first (a real implementation
                // would suppress duplicates the same way).
                if first {
                    self.forward(ctx, forward_level);
                }
            }
        }
    }
}

/// A group wired for T-mesh multicast: members, their neighbor tables and
/// the key server's table.
#[derive(Debug, Clone)]
pub struct TmeshGroup {
    spec: IdSpec,
    members: Vec<Member>,
    tables: Vec<Rc<NeighborTable>>,
    server_table: Rc<ServerTable>,
    server_host: HostId,
    index: Rc<HashMap<UserId, usize>>,
}

impl TmeshGroup {
    /// Builds all tables from global membership (oracle construction; see
    /// `rekey_table::oracle`).
    ///
    /// # Panics
    ///
    /// Panics if `members` contains duplicate IDs.
    pub fn build(
        spec: &IdSpec,
        members: Vec<Member>,
        server_host: HostId,
        net: &impl Network,
        k: usize,
        policy: PrimaryPolicy,
    ) -> TmeshGroup {
        let tables = oracle::build_all_tables(spec, &members, net, k, policy)
            .into_iter()
            .map(Rc::new)
            .collect();
        let server_table = Rc::new(oracle::build_server_table(
            spec,
            &members,
            server_host,
            net,
            k,
        ));
        let mut index = HashMap::with_capacity(members.len());
        for (i, m) in members.iter().enumerate() {
            let prev = index.insert(m.id.clone(), i);
            assert!(prev.is_none(), "duplicate member ID {}", m.id);
        }
        TmeshGroup {
            spec: *spec,
            members,
            tables,
            server_table,
            server_host,
            index: Rc::new(index),
        }
    }

    /// Builds a group from pre-constructed tables (for protocol-level code
    /// that maintains tables incrementally).
    pub fn from_tables(
        spec: &IdSpec,
        members: Vec<Member>,
        tables: Vec<Rc<NeighborTable>>,
        server_table: Rc<ServerTable>,
        server_host: HostId,
    ) -> TmeshGroup {
        assert_eq!(members.len(), tables.len(), "one table per member");
        let mut index = HashMap::with_capacity(members.len());
        for (i, m) in members.iter().enumerate() {
            let prev = index.insert(m.id.clone(), i);
            assert!(prev.is_none(), "duplicate member ID {}", m.id);
        }
        TmeshGroup {
            spec: *spec,
            members,
            tables,
            server_table,
            server_host,
            index: Rc::new(index),
        }
    }

    /// The ID-space specification.
    pub fn spec(&self) -> &IdSpec {
        &self.spec
    }

    /// The group members, in index order.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The neighbor table of member `i`.
    pub fn table(&self, i: usize) -> &NeighborTable {
        &self.tables[i]
    }

    /// The key server's table.
    pub fn server_table(&self) -> &ServerTable {
        &self.server_table
    }

    /// The key server's host.
    pub fn server_host(&self) -> HostId {
        self.server_host
    }

    /// The member index of `id`, i.e. its position in [`TmeshGroup::members`].
    ///
    /// O(1): backed by the session's `UserId → index` map, which is built
    /// once per session. Transports use this instead of scanning
    /// `members()` per hop.
    pub fn member_index(&self, id: &UserId) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// The network host of the given source.
    pub fn host_of(&self, source: Source) -> HostId {
        match source {
            Source::Server => self.server_host,
            Source::User(i) => self.members[i].host,
        }
    }

    /// Runs one multicast session from `source` and returns its outcome.
    pub fn multicast(&self, net: &impl Network, source: Source) -> MulticastOutcome {
        self.multicast_with_failures(net, source, &[])
    }

    /// Runs one multicast session while the members in `failed` are crashed
    /// (post-detection steady state): every forwarder skips failed
    /// neighbors and uses the next live neighbor of the same table entry
    /// instead — the fail-over of §2.3. With `K > 1` and enough survivors
    /// per entry, all live members are still reached exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the sender itself is failed or out of range.
    pub fn multicast_with_failures(
        &self,
        net: &impl Network,
        source: Source,
        failed: &[usize],
    ) -> MulticastOutcome {
        let n = self.members.len();
        let mut failed_mask = vec![false; n];
        for &f in failed {
            failed_mask[f] = true;
        }
        if let Source::User(s) = source {
            assert!(!failed_mask[s], "the sender cannot be failed");
        }
        let failed_mask = Rc::new(failed_mask);
        let mut nodes: Vec<MeshNode> = (0..n)
            .map(|i| MeshNode {
                role: Role::User {
                    table: Rc::clone(&self.tables[i]),
                },
                index: Rc::clone(&self.index),
                deliveries: Vec::new(),
                forwarded: 0,
                log: Vec::new(),
                me: Source::User(i),
                failed: Rc::clone(&failed_mask),
            })
            .collect();
        // Node n is the key server.
        nodes.push(MeshNode {
            role: Role::Server {
                table: Rc::clone(&self.server_table),
            },
            index: Rc::clone(&self.index),
            deliveries: Vec::new(),
            forwarded: 0,
            log: Vec::new(),
            me: Source::Server,
            failed: Rc::clone(&failed_mask),
        });

        let hosts: Vec<HostId> = self
            .members
            .iter()
            .map(|m| m.host)
            .chain(std::iter::once(self.server_host))
            .collect();
        let delay = move |from: NodeId, to: NodeId| net.one_way(hosts[from.0], hosts[to.0]);
        let mut sim = Simulation::new(nodes, delay);
        let start_node = match source {
            Source::Server => NodeId(n),
            Source::User(i) => NodeId(i),
        };
        sim.inject_at(0, start_node, start_node, MeshMsg::Start);
        let finished_at = sim.run_until_idle();

        let nodes = sim.into_nodes();
        let server_sent = nodes[n].forwarded;
        let mut transmissions = Vec::new();
        let mut deliveries = Vec::with_capacity(n);
        let mut forwarded = Vec::with_capacity(n);
        for node in nodes {
            transmissions.extend(node.log.iter().copied());
            if let Source::User(_) = node.me {
                deliveries.push(node.deliveries);
                forwarded.push(node.forwarded);
            }
        }
        MulticastOutcome {
            source,
            deliveries,
            forwarded,
            server_sent,
            transmissions,
            finished_at,
        }
    }

    /// Maps a session's overlay transmissions onto physical links, giving
    /// the per-link message-copy load (*link stress*, §2.3). Returns `None`
    /// on substrates that do not model links (RTT matrices).
    pub fn link_load(&self, net: &impl Network, outcome: &MulticastOutcome) -> Option<LinkLoad> {
        if net.link_count() == 0 {
            return None;
        }
        let mut load = LinkLoad::new(net.link_count());
        for t in outcome.transmissions() {
            let from = self.host_of(t.from);
            let to = self.members[t.to].host;
            let path = net.path_links(from, to)?;
            load.add_path(&path, 1);
        }
        Some(load)
    }
}
