//! Property tests for the T-mesh correctness results (§2.3):
//!
//! * Theorem 1 — with 1-consistent tables and no loss, every member except
//!   the sender receives exactly one copy;
//! * Lemma 1 — a member at forwarding level `i` and all its downstream
//!   users share the first `i` ID digits;
//! * Definition 4 — every user is at a unique forwarding level.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use rekey_id::{IdSpec, UserId};
use rekey_net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use rekey_table::{Member, PrimaryPolicy};
use rekey_tmesh::{Source, TmeshGroup};

fn build_group(
    spec: &IdSpec,
    id_indices: &[u64],
    k: usize,
    seed: u64,
) -> (TmeshGroup, MatrixNetwork) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
    let mut seen = std::collections::BTreeSet::new();
    let members: Vec<Member> = id_indices
        .iter()
        .filter(|&&idx| seen.insert(idx % spec.id_space()))
        .enumerate()
        .map(|(i, &idx)| Member {
            id: UserId::from_index(spec, idx % spec.id_space()),
            host: HostId(i % (net.host_count() - 1)),
            joined_at: i as u64,
        })
        .collect();
    let server_host = HostId(net.host_count() - 1);
    let group = TmeshGroup::build(
        spec,
        members,
        server_host,
        &net,
        k,
        PrimaryPolicy::SmallestRtt,
    );
    (group, net)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem1_server_multicast_delivers_exactly_once(
        id_indices in vec(0u64..64, 1..24),
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        let spec = IdSpec::new(3, 4).unwrap();
        let (group, net) = build_group(&spec, &id_indices, k, seed);
        let outcome = group.multicast(&net, Source::Server);
        prop_assert!(outcome.exactly_once().is_ok());
    }

    #[test]
    fn theorem1_user_multicast_delivers_exactly_once(
        id_indices in vec(0u64..64, 2..24),
        sender_pick in 0usize..100,
        seed in 0u64..1000,
    ) {
        let spec = IdSpec::new(3, 4).unwrap();
        let (group, net) = build_group(&spec, &id_indices, 2, seed);
        let sender = sender_pick % group.members().len();
        let outcome = group.multicast(&net, Source::User(sender));
        prop_assert!(outcome.exactly_once().is_ok());
    }

    #[test]
    fn lemma1_transmissions_preserve_prefixes(
        id_indices in vec(0u64..256, 2..32),
        sender_pick in 0usize..100,
        seed in 0u64..1000,
    ) {
        let spec = IdSpec::new(4, 4).unwrap();
        let (group, net) = build_group(&spec, &id_indices, 2, seed);
        let n = group.members().len();
        let sender = sender_pick % (n + 1);
        let source = if sender == n { Source::Server } else { Source::User(sender) };
        let outcome = group.multicast(&net, source);
        prop_assert!(outcome.exactly_once().is_ok());

        for t in outcome.transmissions() {
            // forward_level is the row plus one; with `row = forward_level-1`:
            let row = t.forward_level - 1;
            let to_id = &group.members()[t.to].id;
            match t.from {
                Source::Server => {
                    prop_assert_eq!(t.forward_level, 1);
                }
                Source::User(f) => {
                    let from_id = &group.members()[f].id;
                    // Receiver shares the first `row` digits with the
                    // transmitter and differs at digit `row` — i.e. it lies
                    // in the transmitter's (row, j)-ID subtree.
                    prop_assert!(from_id.common_prefix_len(to_id) == row,
                        "common prefix of {} and {} must be exactly {}", from_id, to_id, row);
                    // The transmitter's own forwarding level is ≤ row
                    // (Fig. 2, line 6), unless it is the data sender.
                    if !matches!(outcome.source(), Source::User(s) if s == f) {
                        let lvl = outcome.first_delivery(f).unwrap().forward_level;
                        prop_assert!(lvl <= row);
                    }
                }
            }
        }
    }

    /// Lemma 1 corollary: each receiver's forwarding level equals one plus
    /// the common-prefix length with its parent, so levels strictly increase
    /// along every tree path (each member has a unique forwarding level,
    /// Definition 4).
    #[test]
    fn forwarding_levels_increase_downstream(
        id_indices in vec(0u64..64, 2..20),
        seed in 0u64..1000,
    ) {
        let spec = IdSpec::new(3, 4).unwrap();
        let (group, net) = build_group(&spec, &id_indices, 1, seed);
        let outcome = group.multicast(&net, Source::Server);
        for (i, _) in group.members().iter().enumerate() {
            let d = outcome.first_delivery(i).unwrap();
            if let Source::User(parent) = d.from {
                let pd = outcome.first_delivery(parent).unwrap();
                prop_assert!(d.forward_level > pd.forward_level);
            } else {
                prop_assert_eq!(d.forward_level, 1);
            }
        }
    }
}

/// Deterministic regression: the Fig. 1/Fig. 3 five-user example. The
/// multicast tree of Fig. 3 has the server reaching one user per level-1
/// subtree, which then fan out within their subtrees.
#[test]
fn fig3_example_topology() {
    let spec = IdSpec::new(2, 4).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
    let ids = [[0u16, 0], [0, 1], [2, 0], [2, 1], [2, 2]];
    let members: Vec<Member> = ids
        .iter()
        .enumerate()
        .map(|(i, d)| Member {
            id: UserId::new(&spec, d.to_vec()).unwrap(),
            host: HostId(i),
            joined_at: i as u64,
        })
        .collect();
    let group = TmeshGroup::build(
        &spec,
        members,
        HostId(10),
        &net,
        4,
        PrimaryPolicy::SmallestRtt,
    );
    let outcome = group.multicast(&net, Source::Server);
    assert!(outcome.exactly_once().is_ok());
    // The server sends exactly two copies: one into subtree [0], one into [2].
    assert_eq!(outcome.server_sent(), 2);
    // Exactly one member of each level-1 subtree is at forwarding level 1.
    let levels: Vec<usize> = (0..5)
        .map(|i| outcome.first_delivery(i).unwrap().forward_level)
        .collect();
    let level1 = levels.iter().filter(|&&l| l == 1).count();
    assert_eq!(level1, 2);
    // Total transmissions equal the number of members (a tree).
    assert_eq!(outcome.transmissions().len(), 5);
}

/// The application-layer delay of each member equals the sum of one-way
/// delays along its overlay path (the simulator adds no other latency).
#[test]
fn delays_are_path_sums() {
    let spec = IdSpec::new(2, 4).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
    let ids = [[0u16, 0], [0, 1], [1, 0], [3, 2]];
    let members: Vec<Member> = ids
        .iter()
        .enumerate()
        .map(|(i, d)| Member {
            id: UserId::new(&spec, d.to_vec()).unwrap(),
            host: HostId(i),
            joined_at: 0,
        })
        .collect();
    let group = TmeshGroup::build(
        &spec,
        members,
        HostId(12),
        &net,
        4,
        PrimaryPolicy::SmallestRtt,
    );
    let outcome = group.multicast(&net, Source::Server);
    for i in 0..4 {
        let d = outcome.first_delivery(i).unwrap();
        let parent_host = group.host_of(d.from);
        let hop = net.one_way(parent_host, group.members()[i].host);
        let parent_arrival = match d.from {
            Source::Server => 0,
            Source::User(p) => outcome.first_delivery(p).unwrap().arrival,
        };
        assert_eq!(d.arrival, parent_arrival + hop);
    }
}

/// §2.3 fail-over: with K ≥ 2 and a minority of crashed members, every
/// surviving member still receives exactly one copy — forwarders route
/// around failed primaries using backup neighbors from the same entries.
#[test]
fn failure_recovery_reaches_all_survivors() {
    let spec = IdSpec::new(3, 4).unwrap();
    let indices: Vec<u64> = (0..40).map(|i| i * 13 % 64).collect();
    let (group, net) = build_group(&spec, &indices, 4, 77);
    let n = group.members().len();
    assert!(n >= 20, "need a reasonably sized group");

    // Fail ~20% of members (never the implicit sender — the server).
    let failed: Vec<usize> = (0..n).filter(|i| i % 5 == 2).collect();
    let outcome = group.multicast_with_failures(&net, Source::Server, &failed);
    for i in 0..n {
        let copies = outcome.deliveries(i).len();
        if failed.contains(&i) {
            assert_eq!(copies, 0, "failed member {i} must receive nothing");
        } else {
            assert_eq!(copies, 1, "survivor {i} must receive exactly one copy");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under arbitrary failure sets, no survivor ever receives a duplicate
    /// copy, and failed members receive nothing (safety half of the
    /// fail-over; liveness needs enough live neighbors per entry and is
    /// covered by the deterministic test above).
    #[test]
    fn failures_never_cause_duplicates(
        id_indices in vec(0u64..64, 4..24),
        fail_mask in vec(proptest::bool::weighted(0.3), 24),
        k in 1usize..4,
        seed in 0u64..500,
    ) {
        let spec = IdSpec::new(3, 4).unwrap();
        let (group, net) = build_group(&spec, &id_indices, k, seed);
        let n = group.members().len();
        let failed: Vec<usize> =
            (0..n).filter(|&i| *fail_mask.get(i).unwrap_or(&false)).collect();
        prop_assume!(failed.len() < n); // keep at least one survivor
        let outcome = group.multicast_with_failures(&net, Source::Server, &failed);
        for i in 0..n {
            let copies = outcome.deliveries(i).len();
            if failed.contains(&i) {
                prop_assert_eq!(copies, 0);
            } else {
                prop_assert!(copies <= 1, "duplicate at survivor {}", i);
            }
        }
    }
}
