//! Multi-party game data transport: T-mesh vs NICE head-to-head on a
//! transit-stub internet.
//!
//! Every player periodically multicasts state updates to all others. This
//! example measures, for each of several senders, the application-layer
//! delay and relative delay penalty (RDP) that T-mesh and NICE deliver over
//! the *same* membership and join order — the §4.1.2 comparison at example
//! scale, plus physical link stress which only a router-level substrate can
//! expose.
//!
//! Run with: `cargo run --release --example alm_data_transport`

use group_rekeying::id::IdSpec;
use group_rekeying::net::gtitm::{generate, GtItmParams};
use group_rekeying::net::{HostId, Network, RoutedNetwork};
use group_rekeying::nice::{NiceHierarchy, NiceParams};
use group_rekeying::proto::{AssignParams, Group};
use group_rekeying::table::PrimaryPolicy;
use group_rekeying::tmesh::{metrics::PathMetrics, Source};
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(3);
    let spec = IdSpec::PAPER;
    let players = 96usize;

    let topo = generate(&GtItmParams::default(), &mut rng);
    let net = RoutedNetwork::random_attachment(topo.into_graph(), players + 1, &mut rng);
    let server = HostId(players);

    // Same join order for both overlays.
    let mut group = Group::new(
        &spec,
        server,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
    );
    let mut nice = NiceHierarchy::new(NiceParams::default());
    for h in 0..players {
        group.join(HostId(h), &net, h as u64).unwrap();
        nice.join(HostId(h), &net);
    }
    let mesh = group.tmesh();
    println!(
        "{players} players on {} routers / {} links\n",
        net.graph().router_count(),
        net.graph().link_count()
    );
    println!(
        "sender  scheme  p50_delay_ms  p95_delay_ms  p50_rdp  max_user_stress  max_link_stress"
    );

    for round in 0..5 {
        let sender = rng.gen_range(0..players);
        let sender_host = group.members()[sender].host;

        // T-mesh session.
        let outcome = mesh.multicast(&net, Source::User(sender));
        outcome.exactly_once().expect("Theorem 1");
        let metrics = PathMetrics::from_outcome(&mesh, &net, &outcome);
        let load = mesh.link_load(&net, &outcome).expect("router substrate");
        report(
            round,
            "tmesh",
            &metrics.delay,
            &metrics.rdp,
            metrics.stress.iter().map(|&s| u64::from(s)).max().unwrap(),
            load.max(),
        );

        // NICE session from the same sender.
        let nout = nice.data_multicast(&net, sender_host);
        let mut delays = Vec::new();
        let mut rdps = Vec::new();
        let mut max_stress = 0u64;
        for m in group.members() {
            max_stress = max_stress.max(u64::from(nout.user_stress(m.host)));
            if let Some(d) = nout.delivery(m.host) {
                delays.push(Some(d.arrival));
                rdps.push(Some(
                    d.arrival as f64 / net.one_way(sender_host, m.host).max(1) as f64,
                ));
            }
        }
        let nload = nout.link_load(&net).expect("router substrate");
        report(round, "nice", &delays, &rdps, max_stress, nload.max());
    }
    println!("\nT-mesh keeps delay, RDP and link stress below NICE from every sender —");
    println!("the same tables serve rekey and data transport with no extra state.");
}

fn report(
    round: usize,
    scheme: &str,
    delays: &[Option<u64>],
    rdps: &[Option<f64>],
    max_stress: u64,
    max_link: u64,
) {
    let mut d: Vec<f64> = delays
        .iter()
        .flatten()
        .map(|&x| x as f64 / 1000.0)
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut r: Vec<f64> = rdps.iter().flatten().copied().collect();
    r.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "{:>6}  {:<6}  {:>12.1}  {:>12.1}  {:>7.2}  {:>15}  {:>15}",
        round,
        scheme,
        d[d.len() / 2],
        d[(d.len() * 95) / 100],
        r[r.len() / 2],
        max_stress,
        max_link,
    );
}
