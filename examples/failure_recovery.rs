//! Failure recovery on the event-driven group runtime: silent crashes are
//! detected by member heartbeats (§3.2), crashed members' records are
//! evicted from the survivors' neighbor tables, the server broadcasts
//! replacement candidates, and in the meantime rekey forwarding routes
//! around the suspects by falling back to the next live neighbor of the
//! same `(i, j)` table entry (§2.3, K = 4 backups).
//!
//! Run with: `cargo run --release --example failure_recovery`

use group_rekeying::id::IdSpec;
use group_rekeying::net::{MatrixNetwork, PlanetLabParams};
use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
use group_rekeying::sim::seeded_rng;

const SEC: u64 = 1_000_000;

fn main() {
    let params = PlanetLabParams {
        continent_hosts: vec![50, 30, 15, 10],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut seeded_rng(404));
    let spec = IdSpec::new(4, 8).expect("valid spec");
    let config = GroupConfig::for_spec(&spec).k(4).seed(404);
    let mut rt = GroupRuntime::new(config, RuntimeConfig::default(), net);

    // 80 members join over the first two intervals; at t = 35 s a whole
    // "rack" of 8 members crashes at the same instant — no LeaveRequest,
    // no notification, their nodes simply absorb every message from then
    // on. Only the steady-state heartbeats can find out.
    let members = 80usize;
    let crashed: Vec<usize> = (0..8).map(|i| i * 9 + 3).collect();
    let mut trace: Vec<ChurnEvent> = (0..members as u64)
        .map(|i| ChurnEvent::join(SEC + i * 200_000))
        .collect();
    for &victim in &crashed {
        trace.push(ChurnEvent::crash(35 * SEC, victim));
    }
    rt.run_trace(&trace);
    // Two heartbeat periods bound detection; run a few intervals past it.
    rt.finish(101 * SEC);

    let report = rt.report();
    println!(
        "group of {members}, K = 4; {} members crashed silently at t = 35 s\n",
        crashed.len()
    );
    println!("rekey intervals completed   {:>8}", report.intervals);
    println!("heartbeat pings sent        {:>8}", report.pings);
    println!("stale records evicted       {:>8}", report.evictions);
    println!(
        "failures detected at server {:>8}",
        report.failures_detected
    );
    println!("messages absorbed by dead   {:>8}", report.dead_letters);

    assert_eq!(
        report.failures_detected,
        crashed.len() as u64,
        "every crash is detected"
    );
    assert_eq!(rt.group().len(), members - crashed.len());

    // The survivors' tables were repaired with the server's replacement
    // candidates and are K-consistent again; every survivor kept pace
    // with the rekey intervals throughout the outage window.
    rt.check_consistency()
        .expect("survivor tables repaired to K-consistency");
    let server_interval = rt.server().interval();
    for handle in 0..members {
        if crashed.contains(&handle) {
            continue;
        }
        let agent = rt.agent(handle).expect("survivor has keys");
        assert_eq!(agent.interval(), server_interval, "survivor {handle} lags");
    }
    println!(
        "\nsurvivor tables repaired: K-consistent, no ghost records; all {} survivors \
         hold the interval-{} group key.",
        members - crashed.len(),
        server_interval
    );
}
