//! Failure recovery: T-mesh routing around crashed members (§2.3) and the
//! distributed failure-notification/repair path (§3.2).
//!
//! Crashes a growing fraction of a 100-member group and shows that, with
//! `K = 4` backup neighbors per table entry, the server's rekey multicast
//! keeps reaching every survivor exactly once — forwarders silently fail
//! over to the next live neighbor of the same entry. Then runs the
//! message-level protocol simulation where survivors *notify* the server,
//! which coordinates table repair.
//!
//! Run with: `cargo run --release --example failure_recovery`

use group_rekeying::id::IdSpec;
use group_rekeying::net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::distributed::run_distributed_session;
use group_rekeying::proto::{AssignParams, Group};
use group_rekeying::table::{check_consistency, PrimaryPolicy};
use group_rekeying::tmesh::Source;
use rand::{seq::SliceRandom, SeedableRng};

fn main() {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(404);
    let spec = IdSpec::PAPER;
    let users = 100usize;

    let params = PlanetLabParams {
        continent_hosts: vec![50, 30, 15, 10],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut rng);
    let server = HostId(net.host_count() - 1);
    let mut group = Group::new(
        &spec,
        server,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
    );
    for h in 0..users {
        group.join(HostId(h), &net, h as u64).unwrap();
    }
    let mesh = group.tmesh();

    println!("part 1: multicast fail-over with K = 4 backup neighbors\n");
    println!("failed_members  survivors_reached  survivors_missed  duplicates");
    for fail_pct in [0usize, 5, 10, 20, 30] {
        let mut order: Vec<usize> = (0..users).collect();
        order.shuffle(&mut rng);
        let failed: Vec<usize> = order.into_iter().take(users * fail_pct / 100).collect();
        let outcome = mesh.multicast_with_failures(&net, Source::Server, &failed);
        let mut reached = 0;
        let mut missed = 0;
        let mut dupes = 0;
        for i in 0..users {
            let copies = outcome.deliveries(i).len();
            if failed.contains(&i) {
                assert_eq!(copies, 0, "failed members receive nothing");
            } else {
                match copies {
                    0 => missed += 1,
                    1 => reached += 1,
                    _ => dupes += 1,
                }
            }
        }
        println!(
            "{:>14}  {:>17}  {:>16}  {:>10}",
            failed.len(),
            reached,
            missed,
            dupes
        );
    }

    println!("\npart 2: distributed failure notification and table repair\n");
    // Run the message-level protocol: 40 joins, then a third of them
    // "fail" (their leave doubles as the failure notification reaching the
    // server, which broadcasts repair candidates).
    let small_spec = IdSpec::new(4, 16).unwrap();
    let times: Vec<u64> = (0..40).map(|i| i * 4_000_000).collect();
    let failures: Vec<(usize, u64)> = (0..40)
        .step_by(3)
        .map(|n| (n, 300_000_000 + n as u64 * 1_000))
        .collect();
    let out = run_distributed_session(
        &small_spec,
        &AssignParams::for_depth(4),
        2,
        &net,
        40,
        &times,
        &failures,
    );
    println!(
        "{} joined, {} failed, {} survivors",
        40,
        failures.len(),
        out.members.len()
    );
    check_consistency(&small_spec, &out.members, &out.tables, 1)
        .expect("survivor tables repaired to 1-consistency");
    println!("survivor tables repaired: 1-consistent, no ghost records");
    println!("({} protocol messages end to end)", out.messages);
}
