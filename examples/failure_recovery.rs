//! Failure recovery on the event-driven group runtime, three acts:
//!
//! 1. **Silent crashes** — detected by member heartbeats (§3.2), crashed
//!    members' records are evicted from the survivors' neighbor tables,
//!    the server broadcasts replacement candidates, and in the meantime
//!    rekey forwarding routes around the suspects by falling back to the
//!    next live neighbor of the same `(i, j)` table entry (§2.3, K = 4
//!    backups).
//! 2. **Partition and heal** — two members are cut off long enough to be
//!    wrongfully departed; after the heal the server disowns them
//!    (`NotMember`) and they rejoin from scratch.
//! 3. **Server kill and respawn** — the key server dies mid-run and
//!    resumes from its checkpoint journal with a bumped epoch; every
//!    member notices the epoch change and resyncs.
//!
//! Run with: `cargo run --release --example failure_recovery`

use group_rekeying::id::IdSpec;
use group_rekeying::net::{MatrixNetwork, PlanetLabParams};
use group_rekeying::proto::chaos;
use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
use group_rekeying::sim::{seeded_rng, FaultPlan, NodeId};

const SEC: u64 = 1_000_000;

fn main() {
    crash_detection();
    partition_heal();
    server_restart();
}

/// Act 2: a partition wrongfully departs two members; the self-healing
/// machinery walks them through `NotMember` → rejoin after the heal.
fn partition_heal() {
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut seeded_rng(17));
    let spec = IdSpec::new(3, 8).expect("valid spec");
    let config = GroupConfig::for_spec(&spec).k(2).seed(17);
    // Members with join handles 0 and 1 (simulator nodes 1 and 2) lose
    // contact with everyone else from t = 20 s to t = 56 s.
    let isolated = vec![NodeId(1), NodeId(2)];
    let plan = FaultPlan::new().partition(vec![isolated], 20 * SEC, 56 * SEC);
    let mut rt = GroupRuntime::new(config, RuntimeConfig::default(), net).with_faults(plan);
    let trace: Vec<ChurnEvent> = (0..8)
        .map(|i| ChurnEvent::join(SEC + i * 200_000))
        .collect();
    rt.run_trace(&trace);
    rt.finish(150 * SEC);

    let report = rt.snapshot();
    println!("\n== partition: members 0 and 1 cut off from t = 20 s to t = 56 s ==\n");
    println!(
        "wrongful departures         {:>8}",
        report.failures_detected
    );
    println!("rejoins after the heal      {:>8}", report.rejoins);
    println!("copies cut by the partition {:>8}", report.copies_lost);
    println!("control retransmissions     {:>8}", report.retransmissions);
    assert_eq!(report.rejoins, 2, "both isolated members rejoin");
    assert_eq!(rt.group().len(), 8, "group back at full strength");
    rt.check_consistency()
        .expect("tables K-consistent after heal");
    let server_interval = rt.server().interval();
    for handle in 0..8 {
        let agent = rt.agent(handle).expect("member is back");
        assert_eq!(agent.interval(), server_interval, "member {handle} lags");
    }
    println!("\nrecovery timeline: cut at 20 s -> wrongfully departed (heartbeat evidence)");
    println!("-> heal at 56 s -> NotMember on next server probe -> rejoin -> current again.");
}

/// Act 3: the server is killed and respawns from its crash journal; the
/// epoch bump drives a group-wide resync.
fn server_restart() {
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut seeded_rng(23));
    let spec = IdSpec::new(3, 8).expect("valid spec");
    let config = GroupConfig::for_spec(&spec).k(2).seed(23);
    let plan = FaultPlan::new().outage(chaos::SERVER_NODE, 24 * SEC, 38 * SEC);
    let mut rt = GroupRuntime::new(config, RuntimeConfig::default(), net).with_faults(plan);
    let trace: Vec<ChurnEvent> = (0..10)
        .map(|i| ChurnEvent::join(SEC + i * 200_000))
        .collect();
    rt.run_trace(&trace);
    rt.finish(90 * SEC);

    let report = rt.snapshot();
    println!("\n== server killed at t = 24 s, respawned from its journal at t = 38 s ==\n");
    println!("journal checkpoints written {:>8}", report.checkpoints);
    println!("server restarts             {:>8}", report.restarts);
    println!("server epoch after respawn  {:>8}", rt.server_epoch());
    println!("deliveries lost to outage   {:>8}", report.suppressed);
    println!("member resyncs (epoch bump) {:>8}", report.resyncs);
    assert_eq!(report.restarts, 1);
    assert_eq!(rt.server_epoch(), 1);
    assert!(report.resyncs >= 10, "every member resynced");
    rt.check_consistency()
        .expect("tables K-consistent after restart");
    let server_interval = rt.server().interval();
    for handle in 0..10 {
        let agent = rt.agent(handle).expect("member survived the restart");
        assert_eq!(agent.interval(), server_interval, "member {handle} lags");
    }
    println!("\nrecovery timeline: checkpoint every interval -> crash swallows the tick chain");
    println!("-> respawn restores the last checkpoint, bumps the epoch, rekeys immediately");
    println!("-> members see the new epoch in Forward/ServerPong and resync -> current again.");
}

/// Act 1: silent rack crash, heartbeat detection, table repair.
fn crash_detection() {
    let params = PlanetLabParams {
        continent_hosts: vec![50, 30, 15, 10],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut seeded_rng(404));
    let spec = IdSpec::new(4, 8).expect("valid spec");
    let config = GroupConfig::for_spec(&spec).k(4).seed(404);
    let mut rt = GroupRuntime::new(config, RuntimeConfig::default(), net);

    // 80 members join over the first two intervals; at t = 35 s a whole
    // "rack" of 8 members crashes at the same instant — no LeaveRequest,
    // no notification, their nodes simply absorb every message from then
    // on. Only the steady-state heartbeats can find out.
    let members = 80usize;
    let crashed: Vec<usize> = (0..8).map(|i| i * 9 + 3).collect();
    let mut trace: Vec<ChurnEvent> = (0..members as u64)
        .map(|i| ChurnEvent::join(SEC + i * 200_000))
        .collect();
    for &victim in &crashed {
        trace.push(ChurnEvent::crash(35 * SEC, victim));
    }
    rt.run_trace(&trace);
    // Two heartbeat periods bound detection; run a few intervals past it.
    rt.finish(101 * SEC);

    let report = rt.snapshot();
    println!(
        "group of {members}, K = 4; {} members crashed silently at t = 35 s\n",
        crashed.len()
    );
    println!("rekey intervals completed   {:>8}", report.intervals);
    println!("heartbeat pings sent        {:>8}", report.pings);
    println!("stale records evicted       {:>8}", report.evictions);
    println!(
        "failures detected at server {:>8}",
        report.failures_detected
    );
    println!("messages absorbed by dead   {:>8}", report.dead_letters);

    assert_eq!(
        report.failures_detected,
        crashed.len() as u64,
        "every crash is detected"
    );
    assert_eq!(rt.group().len(), members - crashed.len());

    // The survivors' tables were repaired with the server's replacement
    // candidates and are K-consistent again; every survivor kept pace
    // with the rekey intervals throughout the outage window.
    rt.check_consistency()
        .expect("survivor tables repaired to K-consistency");
    let server_interval = rt.server().interval();
    for handle in 0..members {
        if crashed.contains(&handle) {
            continue;
        }
        let agent = rt.agent(handle).expect("survivor has keys");
        assert_eq!(agent.interval(), server_interval, "survivor {handle} lags");
    }
    println!(
        "\nsurvivor tables repaired: K-consistent, no ghost records; all {} survivors \
         hold the interval-{} group key.",
        members - crashed.len(),
        server_interval
    );
}
