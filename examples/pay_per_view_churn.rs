//! Pay-per-view broadcast with heavy churn (a motivating application from
//! the paper's introduction), driven end to end by the event-driven group
//! runtime: the key server and every viewer are nodes on one simulated
//! clock. Viewers tune in and out as messages; the periodic rekey fires as
//! a timer; the rekey message travels hop-by-hop over the T-mesh overlay
//! with 1% per-copy loss; viewers that miss an interval NACK the server
//! and recover exactly their related encryptions via unicast.
//!
//! Run with: `cargo run --release --example pay_per_view_churn`

use group_rekeying::id::IdSpec;
use group_rekeying::net::{MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
use group_rekeying::sim::seeded_rng;

const SEC: u64 = 1_000_000;

fn main() {
    let params = PlanetLabParams {
        continent_hosts: vec![150, 80, 40, 30], // room for churn
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut seeded_rng(99));
    println!(
        "pay-per-view: {} hosts, 4-digit IDs, K = 4, 10 s rekey intervals, 1% copy loss\n",
        net.host_count()
    );

    let spec = IdSpec::new(4, 8).expect("valid spec");
    let config = GroupConfig::for_spec(&spec).k(4).seed(99);
    let runtime_config = RuntimeConfig::builder().loss(0.01).seed(99).build();
    let mut rt = GroupRuntime::new(config, runtime_config, net);

    // The audience tunes in during the first interval…
    let audience = 160usize;
    let mut trace: Vec<ChurnEvent> = (0..audience as u64)
        .map(|i| ChurnEvent::join(SEC + i * 50_000))
        .collect();
    // …then churns: every interval from 30 s on, one viewer tunes out and
    // a fresh one tunes in (audience size stays constant).
    let churn_intervals = 12u64;
    for i in 0..churn_intervals {
        let t = 30 * SEC + i * 10 * SEC;
        trace.push(ChurnEvent::leave(t, (i as usize * 13) % audience));
        trace.push(ChurnEvent::join(t + 2 * SEC));
    }
    rt.run_trace(&trace);
    rt.finish(165 * SEC);

    let report = rt.snapshot();
    println!("intervals completed        {:>8}", report.intervals);
    println!(
        "viewers (joined/left/now)  {:>8}",
        format!("{}/{}/{}", report.joins, report.departures, report.members)
    );
    println!("overlay rekey copies       {:>8}", report.forward_copies);
    println!("copies lost (1%)           {:>8}", report.copies_lost);
    println!("NACKs -> unicast recovery  {:>8}", report.nacks);
    println!(
        "recovered encryptions      {:>8}",
        report.recovery_encryptions
    );
    println!(
        "apply delay p50/p95 (ms)   {:>8}",
        format!(
            "{:.0}/{:.0}",
            report.apply_delay_us.p50() as f64 / 1_000.0,
            report.apply_delay_us.p95() as f64 / 1_000.0
        )
    );

    // Access control held: every current viewer decrypts the stream frame
    // sealed under the final group key; tuned-out viewers cannot.
    rt.check_consistency()
        .expect("viewer tables are K-consistent");
    let departed: Vec<usize> = (0..churn_intervals as usize)
        .map(|i| (i * 13) % audience)
        .collect();
    let mut rng = seeded_rng(0xF1);
    let sealer = (0..rt.member_count())
        .find(|h| !departed.contains(h))
        .expect("a viewer survived");
    let frame = rt
        .agent(sealer)
        .expect("surviving viewer has keys")
        .seal_data(b"frame 4711", &mut rng)
        .expect("viewer holds the group key");
    let mut current = 0usize;
    for handle in 0..rt.member_count() {
        if departed.contains(&handle) {
            assert!(
                rt.agent(handle).is_none(),
                "tuned-out viewer {handle} kept its keys"
            );
            continue;
        }
        let viewer = rt.agent(handle).expect("current viewer has keys");
        assert_eq!(
            viewer
                .open_data(&frame)
                .expect("current key opens the frame"),
            b"frame 4711"
        );
        current += 1;
    }
    println!(
        "\nall {current} current viewers decrypt the stream; every tuned-out viewer lost \
         access at the interval boundary (forward/backward secrecy via batch rekeying)."
    );
}
