//! Pay-per-view broadcast with heavy churn (another motivating application
//! from the paper's introduction): compares the three key-management
//! strategies' rekey costs as the audience churns.
//!
//! Viewers constantly tune in and out; access control demands a group-key
//! change every interval. This example pits the **modified key tree**, the
//! **original Wong–Gouda–Lam tree** and the **cluster rekeying heuristic**
//! against each other across intervals of increasing leave fraction —
//! reproducing the Fig. 12 crossovers at example scale.
//!
//! Run with: `cargo run --release --example pay_per_view_churn`

use group_rekeying::id::IdSpec;
use group_rekeying::keytree::{ClusteredKeyTree, ModifiedKeyTree, OriginalKeyTree};
use group_rekeying::net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::{AssignParams, Group};
use group_rekeying::table::PrimaryPolicy;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(99);
    let spec = IdSpec::PAPER;
    let audience = 192usize;

    let params = PlanetLabParams {
        continent_hosts: vec![300, 150, 80, 40], // room for churn
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut rng);
    let server = HostId(net.host_count() - 1);

    // Grow the initial audience with topology-aware IDs.
    let mut group = Group::new(
        &spec,
        server,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
    );
    let mut next_host = 0usize;
    for t in 0..audience {
        group.join(HostId(next_host), &net, t as u64).unwrap();
        next_host += 1;
    }
    let ids: Vec<_> = group.members().iter().map(|m| m.id.clone()).collect();
    let mut modified = ModifiedKeyTree::new(&spec);
    modified.batch_rekey(&ids, &[], &mut rng).unwrap();
    let mut original = OriginalKeyTree::balanced(4, &ids);
    let mut cluster = ClusteredKeyTree::new(&spec);
    cluster.batch_rekey(&ids, &[], &mut rng).unwrap();

    println!("audience of {audience}; per-interval rekey cost (encryptions in the message)\n");
    println!("leave_frac  joins leaves  modified  original  cluster  cluster_unicasts");

    for step in 0..6u32 {
        // Leave fraction ramps from ~3% to ~50% of the audience.
        let leaves_n = (audience * (step as usize * 10 + 3)) / 100;
        let joins_n = leaves_n; // audience size stays constant

        let mut leaves = Vec::new();
        for _ in 0..leaves_n {
            let pick = rng.gen_range(0..group.len());
            let id = group.members()[pick].id.clone();
            group.leave(&id, &net).unwrap();
            leaves.push(id);
        }
        let mut joins = Vec::new();
        for _ in 0..joins_n {
            let id = group
                .join(HostId(next_host), &net, 1_000_000 + next_host as u64)
                .unwrap()
                .id;
            next_host += 1;
            joins.push(id);
        }

        let m = modified.batch_rekey(&joins, &leaves, &mut rng).unwrap();
        let o = original.batch_rekey(&joins, &leaves);
        let c = cluster.batch_rekey(&joins, &leaves, &mut rng).unwrap();

        println!(
            "{:>9.0}%  {:>5} {:>6}  {:>8}  {:>8}  {:>7}  {:>16}",
            100.0 * leaves_n as f64 / audience as f64,
            joins_n,
            leaves_n,
            m.cost(),
            o.cost(),
            c.cost(),
            c.leader_unicasts,
        );
    }

    println!(
        "\nAs in Fig. 12: the modified tree pays more than the original for the same churn, \
         and the cluster heuristic claws most of that back. At the paper's 1024-user scale \
         (denser bottom clusters — see `cargo run -p rekey-bench --bin fig12`) the heuristic \
         drops below the original tree until leaves dominate."
    );
}
