//! Quickstart: a secure group on a synthetic PlanetLab-style network.
//!
//! Builds a 32-member group with topology-aware IDs, rekeys it once after
//! churn, delivers the rekey message over T-mesh with message splitting,
//! and shows that every member ends up holding the new group key while the
//! departed member cannot.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::HashMap;

use group_rekeying::id::IdSpec;
use group_rekeying::keytree::{KeyRing, ModifiedKeyTree, RekeyArena};
use group_rekeying::net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::{tmesh_rekey_transport, AssignParams, Group, TransportOptions};
use group_rekeying::table::PrimaryPolicy;
use group_rekeying::tmesh::Source;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let spec = IdSpec::PAPER; // D = 5 digits, base B = 256

    // A 64-host synthetic PlanetLab-style RTT matrix; the last host is the
    // key server.
    let params = PlanetLabParams {
        continent_hosts: vec![30, 20, 10, 4],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut rng);
    let server = HostId(net.host_count() - 1);

    // Members join one by one; each runs the §3.1 ID assignment protocol
    // (probing RTTs against the thresholds R = 150/30/9/3 ms).
    let mut group = Group::new(
        &spec,
        server,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
    );
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = RekeyArena::new();
    let mut rings: HashMap<_, KeyRing> = HashMap::new();
    for h in 0..32 {
        let joined = group
            .join(HostId(h), &net, h as u64)
            .expect("ID space is huge");
        tree.batch_rekey(std::slice::from_ref(&joined.id), &[], &mut rng, &mut arena)
            .expect("fresh user");
        println!(
            "host {:>2} joined as {:<16} ({} queries, {} RTT probes)",
            h,
            joined.id.to_string(),
            joined.stats.queries,
            joined.stats.probes
        );
    }
    group
        .check()
        .expect("neighbor tables are K-consistent (Definition 3)");
    for m in group.members() {
        rings.insert(
            m.id.clone(),
            KeyRing::new(m.id.clone(), tree.user_path_keys(&m.id)),
        );
    }

    // One rekey interval: the member on host 7 leaves.
    let leaver = group
        .members()
        .iter()
        .find(|m| m.host == HostId(7))
        .unwrap()
        .id
        .clone();
    let departed_ring = rings.remove(&leaver).unwrap();
    group.leave(&leaver, &net).expect("member exists");
    let rekey = tree
        .batch_rekey(&[], std::slice::from_ref(&leaver), &mut rng, &mut arena)
        .expect("member leave");
    println!(
        "\nuser {leaver} left; rekey message carries {} encryptions",
        rekey.cost()
    );

    // Deliver the message over T-mesh with REKEY-MESSAGE-SPLIT (Fig. 5).
    let mesh = group.tmesh();
    let report = tmesh_rekey_transport(
        &mesh,
        &net,
        rekey.encryptions(),
        TransportOptions::split().with_detail(),
    );
    let received = report.received_sets.as_ref().unwrap();
    for (i, member) in mesh.members().iter().enumerate() {
        let ring = rings.get_mut(&member.id).unwrap();
        ring.absorb(received[i].iter().map(|&e| &rekey.encryptions()[e]));
        assert_eq!(
            ring.group_key(),
            tree.group_key(),
            "{} must hold the new group key",
            member.id
        );
    }
    let max_recv = report.received.iter().max().unwrap();
    println!(
        "splitting delivered ≤ {max_recv} encryptions per member (instead of {} to everyone)",
        rekey.cost()
    );

    // Forward secrecy: the departed member cannot unwrap anything.
    let mut departed_ring = departed_ring;
    assert_eq!(departed_ring.absorb(rekey.encryptions()), 0);
    println!(
        "departed member decrypted 0 of {} encryptions — forward secrecy holds",
        rekey.cost()
    );

    // The tables also carry ordinary data multicast (Theorem 1).
    let outcome = mesh.multicast(&net, Source::User(0));
    outcome
        .exactly_once()
        .expect("each member receives exactly one copy");
    println!(
        "data multicast from {} reached all {} members exactly once in {:.1} ms",
        mesh.members()[0].id,
        mesh.members().len() - 1,
        outcome.finished_at() as f64 / 1000.0
    );
}
