//! A secure teleconference (one of the paper's motivating applications):
//! concurrent rekey and data transport over the same T-mesh overlay.
//!
//! Simulates ten 512-second rekey intervals of a 120-member conference on a
//! GT-ITM-style transit-stub internet. In each interval some participants
//! join and leave; the key server batch-rekeys; the rekey message is
//! delivered with splitting; and a randomly chosen speaker multicasts a
//! "voice frame" whose latency we report — demonstrating that bursty rekey
//! traffic stays tiny at almost every access link while data flows over the
//! same neighbor tables.
//!
//! Run with: `cargo run --release --example secure_conference`

use std::collections::HashMap;

use group_rekeying::id::IdSpec;
use group_rekeying::keytree::{KeyRing, ModifiedKeyTree, RekeyArena};
use group_rekeying::net::gtitm::{generate, GtItmParams};
use group_rekeying::net::{HostId, RoutedNetwork};
use group_rekeying::proto::{tmesh_rekey_transport, AssignParams, Group, TransportOptions};
use group_rekeying::table::PrimaryPolicy;
use group_rekeying::tmesh::{metrics::PathMetrics, Source};
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
    let spec = IdSpec::PAPER;

    // Transit-stub internet; participants attach to random routers.
    let topo = generate(&GtItmParams::default(), &mut rng);
    let capacity = 200; // hosts provisioned for joins over the session
    let net = RoutedNetwork::random_attachment(topo.into_graph(), capacity + 1, &mut rng);
    let server = HostId(capacity);

    let mut group = Group::new(
        &spec,
        server,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
    );
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = RekeyArena::new();
    let mut rings: HashMap<_, KeyRing> = HashMap::new();
    let mut next_host = 0usize;
    let mut clock: u64 = 0;

    // 120 initial participants.
    for _ in 0..120 {
        let id = group.join(HostId(next_host), &net, clock).unwrap().id;
        next_host += 1;
        tree.batch_rekey(std::slice::from_ref(&id), &[], &mut rng, &mut arena)
            .unwrap();
        rings.insert(
            id.clone(),
            KeyRing::new(id.clone(), tree.user_path_keys(&id)),
        );
    }
    // Refresh rings to the post-bootstrap key state.
    for (id, ring) in rings.iter_mut() {
        *ring = KeyRing::new(id.clone(), tree.user_path_keys(id));
    }
    println!("conference bootstrapped: {} participants\n", group.len());
    println!("interval  joins leaves  rekey_encs  max_recv/user  speaker_delay_p95_ms  rdp_p95");

    for interval in 0..10u64 {
        clock += 512_000_000; // 512 s rekey interval
        let joins_n = rng.gen_range(2..8);
        let leaves_n = rng.gen_range(2..8usize).min(group.len() - 1);

        let mut leaves = Vec::new();
        for _ in 0..leaves_n {
            let pick = rng.gen_range(0..group.len());
            let id = group.members()[pick].id.clone();
            group.leave(&id, &net).unwrap();
            rings.remove(&id);
            leaves.push(id);
        }
        let mut joins = Vec::new();
        for _ in 0..joins_n {
            let id = group.join(HostId(next_host), &net, clock).unwrap().id;
            next_host += 1;
            joins.push(id);
        }
        let rekey = tree
            .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
            .unwrap();
        for id in &joins {
            rings.insert(
                id.clone(),
                KeyRing::new(id.clone(), tree.user_path_keys(id)),
            );
        }

        // Rekey transport with splitting; every survivor decrypts its keys.
        let mesh = group.tmesh();
        let report = tmesh_rekey_transport(
            &mesh,
            &net,
            rekey.encryptions(),
            TransportOptions::split().with_detail(),
        );
        let received = report.received_sets.as_ref().unwrap();
        for (i, member) in mesh.members().iter().enumerate() {
            let ring = rings.get_mut(&member.id).unwrap();
            ring.absorb(received[i].iter().map(|&e| &rekey.encryptions()[e]));
            assert_eq!(ring.group_key(), tree.group_key());
        }

        // A random speaker multicasts a data frame over the same tables.
        let speaker = rng.gen_range(0..group.len());
        let outcome = mesh.multicast(&net, Source::User(speaker));
        outcome.exactly_once().expect("Theorem 1");
        let metrics = PathMetrics::from_outcome(&mesh, &net, &outcome);
        let mut delays: Vec<f64> = metrics
            .delay
            .iter()
            .flatten()
            .map(|&d| d as f64 / 1000.0)
            .collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut rdps: Vec<f64> = metrics.rdp.iter().flatten().copied().collect();
        rdps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = delays[(delays.len() * 95) / 100];
        let rdp95 = rdps[(rdps.len() * 95) / 100];

        println!(
            "{:>8}  {:>5} {:>6}  {:>10}  {:>13}  {:>20.1}  {:>7.2}",
            interval,
            joins_n,
            leaves_n,
            rekey.cost(),
            report.received.iter().max().unwrap(),
            p95,
            rdp95,
        );
    }
    group
        .check()
        .expect("tables stayed K-consistent across the whole session");
    println!("\nall tables K-consistent; every participant holds the current group key");
}
