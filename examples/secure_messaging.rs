//! Secure group messaging with the high-level API: `GroupServer`,
//! `UserAgent`, wire-encoded rekey messages and group-key-sealed payloads.
//!
//! This is the shape a deployment would take: the server batches joins and
//! leaves into rekey intervals; rekey messages travel as *bytes* (the wire
//! codec) split per member over T-mesh; agents decrypt their keys and then
//! exchange ChaCha20-sealed chat messages under the group key. A departed
//! agent demonstrably loses the ability to read new traffic.
//!
//! Run with: `cargo run --release --example secure_messaging`

use std::collections::HashMap;

use group_rekeying::crypto::wire::{decode_rekey_message, encode_rekey_message};
use group_rekeying::id::{IdSpec, UserId};
use group_rekeying::net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::{GroupConfig, UserAgent};
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(2026);
    let spec = IdSpec::PAPER;

    let params = PlanetLabParams {
        continent_hosts: vec![20, 14, 8, 6],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut rng);
    let server_host = HostId(net.host_count() - 1);

    // Bootstrap interval: 24 members join.
    let mut server = GroupConfig::paper().seed(0x5EC).build(server_host);
    for h in 0..24 {
        let id = server.request_join(HostId(h), &net, h as u64).unwrap();
        println!("host {h:>2} admitted as {id}");
    }
    let outcome = server.end_interval();
    let mut agents: HashMap<UserId, UserAgent> = outcome
        .welcomes
        .into_iter()
        .map(|w| (w.id.clone(), UserAgent::from_welcome(w)))
        .collect();
    println!("\ninterval 1 complete: {} members keyed\n", agents.len());

    // Chat: a member seals a message; all agents open it.
    let alice = server.group().members()[0].id.clone();
    let hello = agents[&alice]
        .seal_data(b"hello, group!", &mut rng)
        .unwrap();
    for (id, agent) in &agents {
        assert_eq!(agent.open_data(&hello).unwrap(), b"hello, group!");
        let _ = id;
    }
    println!("'{alice}' sent a sealed message; all 24 members opened it");

    // Churn interval: 3 members leave, 2 join. The rekey message is
    // serialised to bytes exactly as it would hit the network.
    let victims: Vec<UserId> = server
        .group()
        .members()
        .iter()
        .rev()
        .take(3)
        .map(|m| m.id.clone())
        .collect();
    for v in &victims {
        server.request_leave(v, &net).unwrap();
    }
    let eve = agents.remove(&victims[0]).unwrap(); // keeps her old keys!
    for v in &victims[1..] {
        agents.remove(v);
    }
    for h in 30..32 {
        server
            .request_join(HostId(h), &net, 100 + h as u64)
            .unwrap();
    }
    let outcome = server.end_interval();
    for w in outcome.welcomes.clone() {
        println!("new member {} keyed via unicast welcome", w.id);
        agents.insert(w.id.clone(), UserAgent::from_welcome(w));
    }

    let bytes = encode_rekey_message(outcome.encryptions());
    println!(
        "\ninterval 2: {} left, {} joined; rekey message = {} encryptions = {} bytes on the wire",
        victims.len(),
        2,
        outcome.cost(),
        bytes.len()
    );
    let decoded = decode_rekey_message(&bytes, &spec).expect("codec round trip");
    assert_eq!(decoded, outcome.encryptions());

    // Split delivery over T-mesh; agents absorb their shares.
    let delivered = server.deliver(&net, &outcome);
    let mesh = server.mesh();
    let mut max_share = 0;
    for (i, member) in mesh.members().iter().enumerate() {
        max_share = max_share.max(delivered.member_indices(i).len());
        agents
            .get_mut(&member.id)
            .expect("every current member has an agent")
            .handle_rekey(outcome.interval, delivered.member(i));
    }
    println!(
        "split transport delivered at most {max_share} encryptions to any member \
         (total {} across the group)",
        delivered.total_received()
    );

    // New traffic under the new group key.
    let speaker = server.group().members()[rng.gen_range(0..server.group().len())]
        .id
        .clone();
    let secret = agents[&speaker]
        .seal_data(b"post-rekey secret", &mut rng)
        .unwrap();
    for agent in agents.values() {
        assert_eq!(agent.open_data(&secret).unwrap(), b"post-rekey secret");
    }
    assert!(
        eve.open_data(&secret).is_err(),
        "departed member must be locked out"
    );
    println!(
        "\nall {} current members read the post-rekey secret; the departed member cannot",
        agents.len()
    );
}
