//! A secure group over real UDP sockets: the sans-I/O protocol state
//! machines driven by `UdpGroupDriver`, every message a real loopback
//! datagram framed by the versioned wire codec.
//!
//! The session bootstraps 64 members across two worker threads, runs
//! two churned rekey intervals on the wall clock (a voluntary leave and
//! a fresh join, both travelling as packets through the kernel), drains
//! the shutdown flush over the wire, and audits the result: every
//! survivor holds the current group key and a K-consistent neighbor
//! table, and the departed member's agent is gone.
//!
//! Run with: `cargo run --release --example udp_loopback`

use std::time::Duration;

use group_rekeying::id::IdSpec;
use group_rekeying::net::GridNetwork;
use group_rekeying::proto::{GroupConfig, RuntimeConfig, UdpGroupDriver};

fn main() {
    const MEMBERS: usize = 64;
    const PERIOD_US: u64 = 250_000; // 250 ms of wall clock per interval
    let patience = Duration::from_secs(20);

    let net = GridNetwork::new(MEMBERS + 4, 1_000, 100);
    let group = GroupConfig::for_spec(&IdSpec::new(3, 4).unwrap())
        .k(2)
        .seed(2026);
    let config = RuntimeConfig::builder()
        .rekey_period(PERIOD_US)
        .nack_grace(PERIOD_US / 4)
        .heartbeat_period(1 << 40)
        .retry_base(PERIOD_US / 8)
        .seed(7)
        .build();

    let mut rt = UdpGroupDriver::bootstrapped(group, config, net, MEMBERS, 2)
        .expect("loopback sockets bind");
    println!(
        "bootstrapped {MEMBERS} members on 2 worker threads (server interval {})",
        rt.server().interval()
    );

    rt.leave(5);
    assert!(rt.run_to_interval(2, patience), "interval 2 stalled");
    println!("member 5 left; interval 2 rekeyed over the wire");

    let joined = rt.join();
    assert!(rt.run_to_interval(3, patience), "interval 3 stalled");
    println!("handle {joined} joined; interval 3 rekeyed over the wire");

    assert!(rt.finish(patience), "shutdown flush converged");
    rt.check_consistency()
        .expect("all tables K-consistent after churn");

    let group_key = rt.server().tree().group_key().expect("non-empty group");
    assert!(rt.agent(5).is_none(), "the leaver's agent is retired");
    let current = (0..rt.member_count())
        .filter_map(|h| rt.agent(h))
        .filter(|a| a.group_key() == Some(group_key))
        .count();
    println!("{current} live members hold the current group key");

    let traffic = rt.traffic();
    println!(
        "{} datagrams sent, {} received ({} bytes), 0 decode errors: {}",
        traffic.packets_sent,
        traffic.packets_received,
        traffic.bytes_received,
        traffic.decode_errors == 0,
    );
    let report = rt.snapshot();
    println!(
        "{} intervals, {} joins, {} departures, p95 apply delay {} µs",
        report.intervals,
        report.joins,
        report.departures,
        report.apply_delay_us.p95()
    );
}
