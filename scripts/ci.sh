#!/usr/bin/env sh
# CI gate. Network-restricted: all dependencies are vendored (see
# [patch.crates-io] in Cargo.toml), so everything runs with --offline.
#
#   scripts/ci.sh
#
# Runs the release build, the full test suite, the formatting check and
# clippy with warnings denied — the same bar every PR must clear.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release --workspace --all-targets

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
