#!/usr/bin/env sh
# CI gate. Network-restricted: all dependencies are vendored (see
# [patch.crates-io] in Cargo.toml), so everything runs with --offline.
#
#   scripts/ci.sh
#
# Runs the release build, the full test suite, the runtime and chaos
# soaks, the doc tests, the formatting check, clippy and rustdoc with
# warnings denied — the same bar every PR must clear.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release --workspace --all-targets

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> runtime soak (1k members, 50+ intervals, churn + 2% loss)"
cargo test --offline --release -q --test runtime_soak -- --ignored

echo "==> chaos soak (1k members, burst loss + partition + server restart)"
cargo test --offline --release -q --test chaos_soak -- --ignored

echo "==> failover soak (1k members, replicated server, primary killed mid-interval)"
cargo test --offline --release -q --test failover_soak -- --ignored

echo "==> metrics smoke (200-member soak, snapshot JSON schema validation)"
cargo test --offline --release -q --test metrics_smoke -- --ignored

echo "==> mega soak (65k members on the sharded windowed executor, 1% loss)"
cargo test --offline --release -q --test mega_soak -- --ignored

echo "==> bench_runtime sweep smoke (classic 64/256/1024 + sharded 65k mega point)"
cargo run --offline --release -q -p rekey-bench --bin bench_runtime -- --mega-cap 65536 > /dev/null

echo "==> loopback-UDP load-test smoke (1k members over real sockets, bounded wall-clock)"
cargo run --offline --release -q -p rekey-bench --bin load_test -- --members 1024 --intervals 2 > /dev/null

echo "==> bench_failover smoke (replica count x kill timing, schema-validated snapshots)"
cargo run --offline --release -q -p rekey-bench --bin bench_failover > /dev/null

echo "==> bench_crypto sweep (serial vs parallel seal at 4k/64k, byte-identity + schema check)"
cargo run --offline --release -q -p rekey-bench --bin bench_crypto > /dev/null

echo "==> criterion crypto_batch smoke (churn interval x 1/2/4/8 seal threads, one pass)"
cargo bench --offline -q -p rekey-bench --bench crypto_batch -- --test > /dev/null

echo "==> cargo test --doc"
cargo test --offline --workspace -q --doc

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace --quiet

echo "==> ci.sh: all green"
