//! `rekeysim` — a command-line driver for the group rekeying simulator.
//!
//! Runs a configurable number of rekey intervals over a chosen topology and
//! prints per-interval statistics: rekey cost, split-transport bandwidth,
//! multicast latency, and end-to-end key-delivery verification.
//!
//! ```text
//! USAGE:
//!   rekeysim [--topology planetlab|gtitm] [--users N] [--intervals N]
//!            [--churn N] [--split true|false] [--loss PCT] [--seed N]
//!
//! With `--loss > 0` the lossy transport is used, which always splits
//! (`--split false` only affects the loss-free path).
//!
//! EXAMPLE:
//!   cargo run --release --bin rekeysim -- --topology gtitm --users 256 \
//!       --intervals 5 --churn 16 --loss 2
//! ```

use std::collections::HashMap;

use group_rekeying::id::{IdSpec, UserId};
use group_rekeying::keytree::{KeyRing, ModifiedKeyTree, RekeyArena};
use group_rekeying::net::gtitm::{generate, GtItmParams};
use group_rekeying::net::{HostId, MatrixNetwork, Network, PlanetLabParams, RoutedNetwork};
use group_rekeying::proto::{
    lossy_rekey_transport, tmesh_rekey_transport, AssignParams, Group, TransportOptions,
};
use group_rekeying::sim::seeded_rng;
use group_rekeying::table::PrimaryPolicy;
use group_rekeying::tmesh::{metrics::PathMetrics, Source};
use rand::Rng;

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

enum Net {
    Matrix(MatrixNetwork),
    Routed(RoutedNetwork),
}

impl Network for Net {
    fn host_count(&self) -> usize {
        match self {
            Net::Matrix(n) => n.host_count(),
            Net::Routed(n) => n.host_count(),
        }
    }
    fn rtt(&self, a: HostId, b: HostId) -> u64 {
        match self {
            Net::Matrix(n) => n.rtt(a, b),
            Net::Routed(n) => n.rtt(a, b),
        }
    }
    fn gateway_rtt(&self, a: HostId, b: HostId) -> u64 {
        match self {
            Net::Matrix(n) => n.gateway_rtt(a, b),
            Net::Routed(n) => n.gateway_rtt(a, b),
        }
    }
    fn one_way(&self, a: HostId, b: HostId) -> u64 {
        match self {
            Net::Matrix(n) => n.one_way(a, b),
            Net::Routed(n) => n.one_way(a, b),
        }
    }
}

fn main() {
    let topology: String = arg("--topology", "planetlab".to_string());
    let users: usize = arg("--users", 128);
    let intervals: usize = arg("--intervals", 5);
    let churn: usize = arg("--churn", 8);
    let split: bool = arg("--split", true);
    let loss_pct: u32 = arg("--loss", 0);
    let seed: u64 = arg("--seed", 1);

    let spec = IdSpec::PAPER;
    let capacity = users + intervals * churn + 1;
    let mut rng = seeded_rng(seed);
    let net = match topology.as_str() {
        "gtitm" => {
            let topo = generate(&GtItmParams::default(), &mut rng);
            Net::Routed(RoutedNetwork::random_attachment(
                topo.into_graph(),
                capacity,
                &mut rng,
            ))
        }
        "planetlab" => {
            let mut params = PlanetLabParams::default();
            let total: usize = params.continent_hosts.iter().sum();
            params.continent_hosts = params
                .continent_hosts
                .iter()
                .map(|&c| (c * capacity).div_ceil(total))
                .collect();
            Net::Matrix(MatrixNetwork::synthetic_planetlab(&params, &mut rng))
        }
        other => {
            eprintln!("unknown topology '{other}' (use planetlab or gtitm)");
            std::process::exit(2);
        }
    };
    let server = HostId(net.host_count() - 1);
    eprintln!(
        "rekeysim: {users} users on {topology}, {intervals} intervals × {churn}+{churn} churn, \
         split={split}, loss={loss_pct}%"
    );

    let mut group = Group::new(
        &spec,
        server,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
    );
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = RekeyArena::new();
    let mut rings: HashMap<UserId, KeyRing> = HashMap::new();
    let mut next_host = 0usize;
    for t in 0..users {
        let id = group.join(HostId(next_host), &net, t as u64).unwrap().id;
        next_host += 1;
        tree.batch_rekey(std::slice::from_ref(&id), &[], &mut rng, &mut arena)
            .unwrap();
    }
    for m in group.members() {
        rings.insert(
            m.id.clone(),
            KeyRing::new(m.id.clone(), tree.user_path_keys(&m.id)),
        );
    }

    println!("interval\tjoins\tleaves\trekey_encs\tmax_recv\ttotal_recv\trecovered\tp95_delay_ms\tkeys_ok");
    for interval in 1..=intervals {
        let mut leaves = Vec::new();
        for _ in 0..churn.min(group.len().saturating_sub(1)) {
            let pick = rng.gen_range(0..group.len());
            let id = group.members()[pick].id.clone();
            group.leave(&id, &net).unwrap();
            rings.remove(&id);
            leaves.push(id);
        }
        let mut joins = Vec::new();
        for _ in 0..churn {
            let id = group
                .join(
                    HostId(next_host),
                    &net,
                    (interval * 1000 + next_host) as u64,
                )
                .unwrap()
                .id;
            next_host += 1;
            joins.push(id);
        }
        let out = tree
            .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
            .unwrap();
        for id in &joins {
            rings.insert(
                id.clone(),
                KeyRing::new(id.clone(), tree.user_path_keys(id)),
            );
        }

        let mesh = group.tmesh();
        let (per_member, max_recv, total_recv, recovered): (Vec<Vec<usize>>, u64, u64, usize) =
            if loss_pct > 0 {
                let report = lossy_rekey_transport(
                    &mesh,
                    &net,
                    out.encryptions(),
                    f64::from(loss_pct) / 100.0,
                    &mut rng,
                );
                let max = report.received.iter().max().copied().unwrap_or(0);
                let total = report.received.iter().sum();
                let rec = report.recovering_members.len();
                (report.final_sets, max, total, rec)
            } else {
                let report = tmesh_rekey_transport(
                    &mesh,
                    &net,
                    out.encryptions(),
                    TransportOptions {
                        split,
                        detail: true,
                    },
                );
                let max = report.received.iter().max().copied().unwrap_or(0);
                let total = report.received.iter().sum();
                (report.received_sets.expect("detail"), max, total, 0)
            };
        let mut keys_ok = true;
        for (i, member) in mesh.members().iter().enumerate() {
            let ring = rings.get_mut(&member.id).expect("member has a ring");
            ring.absorb(per_member[i].iter().map(|&e| &out.encryptions()[e]));
            keys_ok &= ring.matches_path(&spec, tree.user_path_keys(&member.id));
        }

        let outcome = mesh.multicast(&net, Source::Server);
        outcome.exactly_once().expect("Theorem 1");
        let metrics = PathMetrics::from_outcome(&mesh, &net, &outcome);
        let mut delays: Vec<f64> = metrics
            .delay
            .iter()
            .flatten()
            .map(|&d| d as f64 / 1000.0)
            .collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = delays[(delays.len() * 95) / 100];

        println!(
            "{interval}\t{}\t{}\t{}\t{max_recv}\t{total_recv}\t{recovered}\t{p95:.1}\t{keys_ok}",
            joins.len(),
            leaves.len(),
            out.cost(),
        );
    }
    group
        .check()
        .expect("K-consistent tables after the whole run");
    eprintln!("rekeysim: done; tables K-consistent, every member holds the current keys");
}
