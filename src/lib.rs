//! Umbrella crate re-exporting the whole group-rekeying workspace.
//!
//! This is a reproduction of *"Efficient Group Rekeying Using
//! Application-Layer Multicast"* (Zhang, Lam & Liu, IEEE ICDCS 2005). See the
//! individual crates for the system pieces:
//!
//! * [`id`] — user IDs, prefixes and the ID tree (§2.1).
//! * [`crypto`] — key material and ChaCha20 key-wrap encryptions.
//! * [`net`] — network substrates (transit-stub topologies, PlanetLab-style
//!   RTT matrices, routing, link stress).
//! * [`sim`] — the discrete event simulation engine.
//! * [`table`] — hypercube-routing neighbor tables and K-consistency (§2.2).
//! * [`tmesh`] — the T-mesh multicast scheme (§2.3).
//! * [`keytree`] — the modified and original key trees and batch rekeying
//!   (§2.4, §4.2, Appendix B).
//! * [`metrics`] — the zero-dependency observability layer: counters,
//!   histograms, tracing spans, and the deterministic JSON writer behind
//!   every snapshot and bench artifact.
//! * [`nice`] — the NICE ALM baseline.
//! * [`ipmc`] — the DVMRP-style IP multicast baseline.
//! * [`proto`] — user ID assignment, rekey message splitting and the seven
//!   rekey transport protocols (§3, §2.5, §4.3).
//!
//! # Notation (the paper's Table 1)
//!
//! | Paper symbol | Meaning | Here |
//! |---|---|---|
//! | `B` | base of each digit in a user ID | [`id::IdSpec::base`] |
//! | `D` | number of digits in a user ID | [`id::IdSpec::depth`] |
//! | `F`-percentile | percentile of measured RTTs used by a joining user | [`proto::AssignParams::f_percentile`] |
//! | `K` | maximum neighbors per table entry | [`table::NeighborTable::k`] |
//! | `N` | total number of users in a group | [`proto::Group::len`] |
//! | `P` | users collected per `(i, j)`-ID subtree | [`proto::AssignParams::p`] |
//! | `R_i` | RTT thresholds, `i = 1 … D−1` | [`proto::AssignParams::thresholds`] |
//! | `u.ID` | user `u`'s ID | [`id::UserId`] |
//! | `u.ID[i]` | `i`-th digit of `u.ID` | [`id::UserId::digit`] |
//! | `u.ID[0 : i]` | first `i + 1` digits of `u.ID` | `u.prefix(i + 1)` ([`id::UserId::prefix`]) |

pub use rekey_crypto as crypto;
pub use rekey_id as id;
pub use rekey_ipmc as ipmc;
pub use rekey_keytree as keytree;
pub use rekey_metrics as metrics;
pub use rekey_net as net;
pub use rekey_nice as nice;
pub use rekey_proto as proto;
pub use rekey_sim as sim;
pub use rekey_table as table;
pub use rekey_tmesh as tmesh;
