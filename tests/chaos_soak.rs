//! Chaos soak: a ~1000-member group survives a compound fault scenario —
//! a three-way network partition healed mid-run, Gilbert–Elliott burst
//! loss plus jitter-induced reordering on the rekey overlay throughout,
//! and a key-server kill/respawn — and still finishes with every live
//! member's local table K-consistent and every live member holding the
//! final group key (verified end to end by opening data sealed under it).
//!
//! The partition is the harshest fault: two of the three cells lose the
//! server for longer than a heartbeat period, so the connected cell
//! wrongfully departs them all. The run only passes if the self-healing
//! machinery walks every victim through `NotMember` → rejoin and the
//! group converges back to full strength, with no retry counter ever
//! escaping its configured cap.
//!
//! Ignored by default — `scripts/ci.sh` runs it in release mode:
//! `cargo test --release --test chaos_soak -- --ignored`.

use group_rekeying::id::IdSpec;
use group_rekeying::net::{MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::chaos;
use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
use group_rekeying::sim::{seeded_rng, FaultPlan, GilbertElliott};

const SEC: u64 = 1_000_000;
const MEMBERS: usize = 1002;

#[test]
#[ignore = "large: ~1k nodes under partition + burst loss + server restart; ci.sh runs it in release"]
fn thousand_member_group_survives_partition_burst_loss_and_server_restart() {
    let params = PlanetLabParams {
        continent_hosts: vec![500, 300, 200, 150],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut seeded_rng(0xC4A0));
    assert!(net.host_count() > MEMBERS);

    let spec = IdSpec::new(5, 8).unwrap();
    let config = GroupConfig::for_spec(&spec).k(4).seed(0xC4A05);
    let runtime_config = RuntimeConfig::builder().seed(0xC4A0).build();
    let retry_cap = runtime_config.retry_cap();

    // The fault plan, all windows in one composable schedule:
    //  * burst loss (~5% mean, bursty) and 30 ms jitter on every rekey
    //    copy for the whole run — jitter exceeds many substrate one-way
    //    delays, so copies genuinely reorder;
    //  * a three-way partition from 60 s to 78 s; only cell 0 keeps the
    //    server, so roughly two thirds of the group is wrongfully
    //    departed and must rejoin after the heal;
    //  * the server killed at 150 s and respawned (from its checkpoint
    //    journal, with an epoch bump) at 165 s.
    let plan = FaultPlan::new()
        .burst_loss(GilbertElliott::moderate())
        .jitter(30_000)
        .partition(chaos::modulo_cells(MEMBERS, 3), 60 * SEC, 78 * SEC)
        .outage(chaos::SERVER_NODE, 150 * SEC, 165 * SEC);

    let mut rt = GroupRuntime::new(config, runtime_config, net).with_faults(plan);

    // All members join over the first two intervals; no voluntary churn —
    // every departure in this run is a wrongful, fault-induced one.
    let trace: Vec<ChurnEvent> = (0..MEMBERS as u64)
        .map(|i| ChurnEvent::join(SEC + i * 17_000))
        .collect();
    let handles = rt.run_trace(&trace);
    // Quiet tail after the restart so every rejoin, resync, and NACK
    // recovery completes before shutdown.
    rt.finish(250 * SEC);

    let report = rt.snapshot();

    // The partition wrongfully departed a large fraction of the group and
    // every victim healed by rejoining: joins balance departures exactly,
    // and the group is back at full strength.
    assert!(
        report.failures_detected > MEMBERS as u64 / 3,
        "the partition must wrongfully depart the cut-off cells (got {})",
        report.failures_detected
    );
    assert_eq!(
        report.departures, report.failures_detected,
        "no voluntary leaves in this trace"
    );
    assert_eq!(
        report.rejoins, report.departures,
        "every wrongful departure must heal by rejoin"
    );
    assert_eq!(report.joins, MEMBERS as u64 + report.rejoins);
    assert_eq!(rt.group().len(), MEMBERS);

    // The server died once and resumed from its journal with a new epoch;
    // the epoch bump forced a group-wide resync.
    assert_eq!(report.restarts, 1);
    assert_eq!(rt.server_epoch(), 1);
    assert!(rt.journal().recorded() > 0);
    assert!(report.suppressed > 0, "the outage swallowed deliveries");
    assert!(
        report.resyncs >= MEMBERS as u64,
        "the epoch bump must resync the whole group (got {})",
        report.resyncs
    );

    // Burst loss fired and was repaired by NACK/unicast recovery, and no
    // retry loop ever escaped its exponential-backoff cap. The fault
    // attribution counters split the drops by cause.
    assert!(report.copies_lost > 0, "burst loss must fire");
    assert!(report.partition_cuts > 0, "the partition must cut messages");
    assert!(report.fault_loss_drops > 0, "burst loss must drop copies");
    assert!(report.nacks > 0, "lost copies must be NACKed");
    assert!(report.recovery_encryptions > 0, "NACKs must be answered");
    assert!(
        report.max_retry_attempts <= retry_cap,
        "retry counter escaped its cap: {} > {}",
        report.max_retry_attempts,
        retry_cap
    );

    // K-consistency of every live member's local table.
    rt.check_consistency()
        .expect("local tables are K-consistent after the chaos soak");

    // Every live member holds the final group key and can use it.
    let server_interval = rt.server().interval();
    let group_key = rt
        .server()
        .tree()
        .group_key()
        .expect("non-empty group has a key")
        .clone();
    let mut rng = seeded_rng(0xDA7A);
    for handle in handles {
        let agent = rt
            .agent(handle)
            .unwrap_or_else(|| panic!("member {handle} lost its agent"));
        assert_eq!(
            agent.interval(),
            server_interval,
            "member {handle} lags the server"
        );
        assert_eq!(
            agent.group_key(),
            Some(&group_key),
            "member {handle} holds a stale group key"
        );
        let sealed = agent.seal_data(b"chaos payload", &mut rng).unwrap();
        assert_eq!(agent.open_data(&sealed).unwrap(), b"chaos payload");
    }
}
