//! Reproducibility tests: every simulation in the workspace is
//! deterministic under a fixed seed — same topology, same IDs, same
//! multicast trees, same rekey messages, same experiment outputs.
//! This is a stated design property (DESIGN.md §5) that the figure
//! regeneration relies on.

use group_rekeying::id::{IdSpec, UserId};
use group_rekeying::keytree::{ModifiedKeyTree, RekeyArena};
use group_rekeying::net::gtitm::{generate, GtItmParams};
use group_rekeying::net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::distributed::run_distributed_joins;
use group_rekeying::proto::{tmesh_rekey_transport, AssignParams, Group, TransportOptions};
use group_rekeying::sim::seeded_rng;
use group_rekeying::table::PrimaryPolicy;
use group_rekeying::tmesh::Source;

fn grow(seed: u64) -> (MatrixNetwork, Group) {
    let mut rng = seeded_rng(seed);
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
    let spec = IdSpec::new(3, 8).unwrap();
    let mut group = Group::new(
        &spec,
        HostId(net.host_count() - 1),
        2,
        PrimaryPolicy::SmallestRtt,
        AssignParams::for_depth(3),
    );
    for h in 0..12 {
        group.join(HostId(h), &net, h as u64).unwrap();
    }
    (net, group)
}

#[test]
fn topology_generation_is_deterministic() {
    let a = generate(&GtItmParams::small(), &mut seeded_rng(5));
    let b = generate(&GtItmParams::small(), &mut seeded_rng(5));
    assert_eq!(a.graph().router_count(), b.graph().router_count());
    assert_eq!(a.graph().link_count(), b.graph().link_count());
    for l in 0..a.graph().link_count() {
        let id = group_rekeying::net::LinkId(l);
        assert_eq!(a.graph().link(id), b.graph().link(id));
    }
    let c = generate(&GtItmParams::small(), &mut seeded_rng(6));
    let same_as_c = (a.graph().router_count(), a.graph().link_count())
        == (c.graph().router_count(), c.graph().link_count())
        && (0..a.graph().link_count()).all(|l| {
            a.graph().link(group_rekeying::net::LinkId(l))
                == c.graph().link(group_rekeying::net::LinkId(l))
        });
    assert!(!same_as_c, "different seeds must differ somewhere");
}

#[test]
fn rtt_matrices_are_deterministic() {
    let a = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut seeded_rng(9));
    let b = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut seeded_rng(9));
    for x in 0..a.host_count() {
        for y in 0..a.host_count() {
            assert_eq!(a.rtt(HostId(x), HostId(y)), b.rtt(HostId(x), HostId(y)));
        }
    }
}

#[test]
fn group_growth_and_multicast_are_deterministic() {
    let (net_a, group_a) = grow(77);
    let (net_b, group_b) = grow(77);
    let ids_a: Vec<UserId> = group_a.members().iter().map(|m| m.id.clone()).collect();
    let ids_b: Vec<UserId> = group_b.members().iter().map(|m| m.id.clone()).collect();
    assert_eq!(ids_a, ids_b, "ID assignment is deterministic");

    let out_a = group_a.tmesh().multicast(&net_a, Source::Server);
    let out_b = group_b.tmesh().multicast(&net_b, Source::Server);
    assert_eq!(out_a.transmissions(), out_b.transmissions());
    assert_eq!(out_a.finished_at(), out_b.finished_at());
}

#[test]
fn rekey_messages_and_split_transport_are_deterministic() {
    let run = |seed: u64| -> (Vec<String>, Vec<u64>, u64) {
        let (net, mut group) = grow(seed);
        let mut rng = seeded_rng(seed ^ 0xAAAA);
        let ids: Vec<UserId> = group.members().iter().map(|m| m.id.clone()).collect();
        let mut tree = ModifiedKeyTree::new(group.spec());
        let mut arena = RekeyArena::new();
        tree.batch_rekey(&ids, &[], &mut rng, &mut arena).unwrap();
        let leaver = ids[5].clone();
        group.leave(&leaver, &net).unwrap();
        let out = tree
            .batch_rekey(&[], &[leaver], &mut rng, &mut arena)
            .unwrap();
        let enc_ids: Vec<String> = out
            .encryptions()
            .iter()
            .map(|e| e.id().to_string())
            .collect();
        let report = tmesh_rekey_transport(
            &group.tmesh(),
            &net,
            out.encryptions(),
            TransportOptions::split(),
        );
        let rtt_fingerprint: u64 = (0..net.host_count())
            .map(|h| net.rtt(HostId(0), HostId(h)))
            .sum();
        (enc_ids, report.received, rtt_fingerprint)
    };
    assert_eq!(run(33), run(33));
    // Different seed ⇒ different topology; the RTT fingerprint always
    // differs even if the small group happens to collapse to the same ID
    // assignment under both topologies.
    assert_ne!(run(33), run(34));
}

#[test]
fn distributed_join_protocol_is_deterministic() {
    let run = || {
        let mut rng = seeded_rng(1234);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let spec = IdSpec::new(3, 8).unwrap();
        let times: Vec<u64> = (0..10).map(|i| i * 1_500).collect(); // concurrent
        run_distributed_joins(&spec, &AssignParams::for_depth(3), 2, &net, 10, &times)
    };
    let a = run();
    let b = run();
    assert_eq!(a.members, b.members);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.finished_at, b.finished_at);
}

#[test]
fn lossy_transport_is_deterministic_in_the_loss_seed() {
    use group_rekeying::proto::lossy_rekey_transport;
    let fingerprint = |loss_seed: u64| -> (u64, u64, Vec<usize>, Vec<u64>) {
        let (net, mut group) = grow(21);
        let mut rng = seeded_rng(0x21);
        let ids: Vec<UserId> = group.members().iter().map(|m| m.id.clone()).collect();
        let mut tree = ModifiedKeyTree::new(group.spec());
        let mut arena = RekeyArena::new();
        tree.batch_rekey(&ids, &[], &mut rng, &mut arena).unwrap();
        let leaver = ids[4].clone();
        group.leave(&leaver, &net).unwrap();
        let out = tree
            .batch_rekey(&[], &[leaver], &mut rng, &mut arena)
            .unwrap();
        let report = lossy_rekey_transport(
            &group.tmesh(),
            &net,
            out.encryptions(),
            0.3,
            &mut seeded_rng(loss_seed),
        );
        (
            report.copies_lost,
            report.recovery_encryptions,
            report.recovering_members,
            report.received,
        )
    };
    assert_eq!(fingerprint(5), fingerprint(5), "same loss seed, same run");
    assert_ne!(
        fingerprint(5),
        fingerprint(6),
        "a different loss seed must change which copies drop"
    );
}

#[test]
fn group_runtime_is_deterministic_under_loss_and_churn() {
    use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
    const SEC: u64 = 1_000_000;
    let fingerprint = |seed: u64| {
        let mut rng = seeded_rng(0x77);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let spec = IdSpec::new(3, 8).unwrap();
        let config = GroupConfig::for_spec(&spec).k(2).seed(3);
        let runtime_config = RuntimeConfig::builder().loss(0.25).seed(seed).build();
        let mut rt = GroupRuntime::new(config, runtime_config, net);
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 250_000))
            .chain([
                ChurnEvent::leave(35 * SEC, 2),
                ChurnEvent::crash(41 * SEC, 6),
            ])
            .collect();
        rt.run_trace(&trace);
        rt.finish(95 * SEC);
        let report = rt.snapshot();
        let key = rt.server().tree().group_key().cloned();
        let intervals: Vec<u64> = (0..10)
            .filter_map(|m| rt.agent(m).map(|a| a.interval()))
            .collect();
        (
            report.delivered,
            report.copies_lost,
            report.nacks,
            report.recovery_encryptions,
            report.evictions,
            key,
            intervals,
        )
    };
    assert_eq!(fingerprint(1), fingerprint(1), "runtime replays exactly");
    let (_, lost_a, ..) = fingerprint(1);
    let (_, lost_b, ..) = fingerprint(2);
    assert!(lost_a > 0 && lost_b > 0, "loss fired in both runs");
}

/// The seal-thread count is a pure performance knob: with the same seed,
/// a batch big enough to cross the parallel threshold produces
/// byte-identical encryptions, updated-ID lists, and group keys at 1, 2,
/// 4, and 8 worker threads, because per-slot nonces are derived from one
/// per-batch seed instead of drawn mid-seal.
#[test]
fn seal_thread_count_never_changes_the_bytes() {
    let run = |threads: usize| {
        let spec = IdSpec::new(3, 16).unwrap();
        let mut rng = seeded_rng(0x5EA1);
        let mut tree = ModifiedKeyTree::new(&spec);
        tree.set_seal_threads(threads);
        let mut arena = RekeyArena::new();
        let users: Vec<UserId> = (0..1400).map(|i| UserId::from_index(&spec, i)).collect();
        let out = tree.batch_rekey(&users, &[], &mut rng, &mut arena).unwrap();
        assert!(
            out.cost() >= 1024,
            "batch must cross the parallel threshold, got {}",
            out.cost()
        );
        let fingerprint = (out.encryptions().to_vec(), out.updated().to_vec());
        let leaves: Vec<UserId> = users[..200].to_vec();
        let out = tree
            .batch_rekey(&[], &leaves, &mut rng, &mut arena)
            .unwrap();
        (
            fingerprint,
            (out.encryptions().to_vec(), out.updated().to_vec()),
            tree.group_key().cloned(),
        )
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            serial,
            run(threads),
            "threads={threads} diverged from the serial seal"
        );
    }
}

/// The same property one layer up: a full [`GroupRuntime`] churn-and-loss
/// run configured with different `seal_threads` values replays to a
/// byte-identical [`MetricsSnapshot`] JSON and the same group key.
#[test]
fn group_runtime_snapshot_is_identical_at_any_seal_thread_count() {
    use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
    const SEC: u64 = 1_000_000;
    let run = |threads: usize| {
        let mut rng = seeded_rng(0x99);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let spec = IdSpec::new(3, 8).unwrap();
        let config = GroupConfig::for_spec(&spec)
            .k(2)
            .seed(6)
            .seal_threads(threads);
        let runtime_config = RuntimeConfig::builder().loss(0.2).seed(11).build();
        let mut rt = GroupRuntime::new(config, runtime_config, net);
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 250_000))
            .chain([ChurnEvent::leave(35 * SEC, 3)])
            .collect();
        rt.run_trace(&trace);
        rt.finish(90 * SEC);
        (
            rt.snapshot().to_json(),
            rt.server().tree().group_key().cloned(),
        )
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            serial,
            run(threads),
            "seal_threads={threads} changed an observable output"
        );
    }
}

/// Chaos runs are reproducible too: the same seed and the same
/// [`FaultPlan`] (partition + burst loss + jitter + a server outage)
/// yield identical [`MetricsSnapshot`]s — every counter, histogram, and
/// span, down to retransmissions and resyncs — byte-identical snapshot
/// JSON, and the same final group key.
#[test]
fn group_runtime_is_deterministic_under_a_fault_plan() {
    use group_rekeying::proto::chaos;
    use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
    use group_rekeying::sim::{FaultPlan, GilbertElliott};
    const SEC: u64 = 1_000_000;
    let run = |seed: u64| {
        let mut rng = seeded_rng(0x88);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let spec = IdSpec::new(3, 8).unwrap();
        let config = GroupConfig::for_spec(&spec).k(2).seed(4);
        let runtime_config = RuntimeConfig::builder().seed(seed).build();
        let plan = FaultPlan::new()
            .burst_loss(GilbertElliott::moderate())
            .jitter(25_000)
            .partition(chaos::modulo_cells(8, 2), 20 * SEC, 44 * SEC)
            .outage(chaos::SERVER_NODE, 70 * SEC, 82 * SEC);
        let mut rt = GroupRuntime::new(config, runtime_config, net).with_faults(plan);
        let trace: Vec<ChurnEvent> = (0..8)
            .map(|i| ChurnEvent::join(SEC + i * 250_000))
            .collect();
        rt.run_trace(&trace);
        rt.finish(140 * SEC);
        (rt.snapshot(), rt.server().tree().group_key().cloned())
    };
    let (report_a, key_a) = run(9);
    let (report_b, key_b) = run(9);
    assert_eq!(report_a, report_b, "same seed + same plan replay exactly");
    assert_eq!(
        report_a.to_json(),
        report_b.to_json(),
        "snapshot JSON is byte-identical across identically seeded runs"
    );
    assert_eq!(key_a, key_b);
    assert!(report_a.copies_lost > 0, "burst loss fired");
    assert!(report_a.partition_cuts > 0, "the partition cut messages");
    assert_eq!(report_a.restarts, 1, "the server outage fired");
    let (report_c, _) = run(10);
    assert_ne!(
        report_a, report_c,
        "a different seed must change the fault draws"
    );
}
