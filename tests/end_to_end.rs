//! Cross-crate end-to-end tests: full system pipeline — topology, ID
//! assignment, neighbor tables, key trees, T-mesh transport with splitting,
//! and real decryption — exercised together over many churn intervals on a
//! router-level (GT-ITM-style) substrate.

use std::collections::HashMap;

use group_rekeying::id::{IdSpec, UserId};
use group_rekeying::keytree::{ClusteredKeyTree, KeyRing, ModifiedKeyTree, RekeyArena};
use group_rekeying::net::gtitm::{generate, GtItmParams};
use group_rekeying::net::{HostId, RoutedNetwork};
use group_rekeying::proto::{
    cluster_rekey_transport, tmesh_rekey_transport, AssignParams, Group, TransportOptions,
};
use group_rekeying::table::PrimaryPolicy;
use group_rekeying::tmesh::Source;
use rand::{Rng, SeedableRng};

type Rng12 = rand_chacha::ChaCha12Rng;

struct System {
    net: RoutedNetwork,
    group: Group,
    tree: ModifiedKeyTree,
    rings: HashMap<UserId, KeyRing>,
    rng: Rng12,
    next_host: usize,
    clock: u64,
}

fn boot(users: usize, capacity: usize, seed: u64, policy: PrimaryPolicy) -> System {
    let mut rng = Rng12::seed_from_u64(seed);
    let spec = IdSpec::new(4, 16).unwrap();
    let topo = generate(&GtItmParams::small(), &mut rng);
    let net = RoutedNetwork::random_attachment(topo.into_graph(), capacity + 1, &mut rng);
    let server = HostId(capacity);
    let mut group = Group::new(&spec, server, 3, policy, AssignParams::for_depth(4));
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut sys = System {
        net,
        group: group.clone(),
        tree: tree.clone(),
        rings: HashMap::new(),
        rng,
        next_host: 0,
        clock: 0,
    };
    let mut arena = RekeyArena::new();
    for _ in 0..users {
        let id = group
            .join(HostId(sys.next_host), &sys.net, sys.clock)
            .unwrap()
            .id;
        sys.next_host += 1;
        sys.clock += 1;
        tree.batch_rekey(&[id], &[], &mut sys.rng, &mut arena)
            .unwrap();
    }
    for m in group.members() {
        sys.rings.insert(
            m.id.clone(),
            KeyRing::new(m.id.clone(), tree.user_path_keys(&m.id)),
        );
    }
    sys.group = group;
    sys.tree = tree;
    sys
}

fn churn_interval(sys: &mut System, joins_n: usize, leaves_n: usize) -> (Vec<UserId>, Vec<UserId>) {
    let mut leaves = Vec::new();
    for _ in 0..leaves_n.min(sys.group.len().saturating_sub(1)) {
        let pick = sys.rng.gen_range(0..sys.group.len());
        let id = sys.group.members()[pick].id.clone();
        sys.group.leave(&id, &sys.net).unwrap();
        sys.rings.remove(&id);
        leaves.push(id);
    }
    let mut joins = Vec::new();
    for _ in 0..joins_n {
        sys.clock += 1;
        let id = sys
            .group
            .join(HostId(sys.next_host), &sys.net, sys.clock)
            .unwrap()
            .id;
        sys.next_host += 1;
        joins.push(id);
    }
    (joins, leaves)
}

/// The full pipeline stays correct over ten churn intervals: K-consistent
/// tables, exactly-once multicast, split delivery, and every member able to
/// decrypt exactly up to the server's key state.
#[test]
fn ten_interval_full_pipeline() {
    let mut sys = boot(40, 120, 0xE2E, PrimaryPolicy::SmallestRtt);
    let mut arena = RekeyArena::new();
    for interval in 0..10 {
        let (joins, leaves) = churn_interval(&mut sys, 4, 4);
        let rekey = sys
            .tree
            .batch_rekey(&joins, &leaves, &mut sys.rng, &mut arena)
            .unwrap();
        for id in &joins {
            sys.rings.insert(
                id.clone(),
                KeyRing::new(id.clone(), sys.tree.user_path_keys(id)),
            );
        }
        sys.group.check().expect("K-consistency after churn");

        let mesh = sys.group.tmesh();
        mesh.multicast(&sys.net, Source::Server)
            .exactly_once()
            .expect("Theorem 1");
        let report = tmesh_rekey_transport(
            &mesh,
            &sys.net,
            rekey.encryptions(),
            TransportOptions::split().with_detail(),
        );
        let received = report.received_sets.as_ref().unwrap();
        for (i, member) in mesh.members().iter().enumerate() {
            let ring = sys.rings.get_mut(&member.id).unwrap();
            ring.absorb(received[i].iter().map(|&e| &rekey.encryptions()[e]));
            assert!(
                ring.matches_path(sys.group.spec(), sys.tree.user_path_keys(&member.id)),
                "interval {interval}: {} lacks the current key set",
                member.id
            );
        }
    }
}

/// Data multicast works from every member over the same tables, and link
/// stress is bounded by the member count (each overlay hop crosses a
/// physical link at most once per transmission).
#[test]
fn data_transport_from_every_member() {
    let sys = boot(24, 30, 0xDA7A, PrimaryPolicy::SmallestRtt);
    let mesh = sys.group.tmesh();
    for sender in 0..sys.group.len() {
        let outcome = mesh.multicast(&sys.net, Source::User(sender));
        outcome
            .exactly_once()
            .unwrap_or_else(|m| panic!("sender {sender}: member {m} wrong"));
        let load = mesh
            .link_load(&sys.net, &outcome)
            .expect("routed substrate");
        assert!(load.max() <= sys.group.len() as u64);
    }
}

/// Cluster-heuristic transport delivers the new group key to every member
/// even though only leaders see the multicast rekey message.
#[test]
fn cluster_transport_reaches_every_member() {
    let mut sys = boot(36, 100, 0xC105, PrimaryPolicy::EarliestJoinAtBottom);
    // Mirror membership into a clustered tree, respecting join order.
    let spec = *sys.group.spec();
    let mut cluster = ClusteredKeyTree::new(&spec);
    let mut ordered: Vec<(u64, UserId)> = sys
        .group
        .members()
        .iter()
        .map(|m| (m.joined_at, m.id.clone()))
        .collect();
    ordered.sort();
    let ordered: Vec<UserId> = ordered.into_iter().map(|(_, u)| u).collect();
    let mut arena = RekeyArena::new();
    cluster
        .batch_rekey(&ordered, &[], &mut sys.rng, &mut arena)
        .unwrap();

    let (joins, leaves) = churn_interval(&mut sys, 5, 5);
    let out = cluster
        .batch_rekey(&joins, &leaves, &mut sys.rng, &mut arena)
        .unwrap();
    let members = sys.group.members().to_vec();
    let mesh = sys.group.tmesh();
    let is_leader = |i: usize| cluster.is_leader(&members[i].id);
    let cluster_of = |i: usize| -> Vec<usize> {
        let prefix = members[i].id.prefix(spec.depth() - 1);
        members
            .iter()
            .enumerate()
            .filter(|(_, m)| prefix.is_prefix_of_id(&m.id))
            .map(|(k, _)| k)
            .collect()
    };
    for split in [false, true] {
        let report = cluster_rekey_transport(
            &mesh,
            &sys.net,
            out.rekey().encryptions(),
            TransportOptions {
                split,
                detail: false,
            },
            &is_leader,
            &cluster_of,
        );
        for (i, member) in members.iter().enumerate() {
            assert!(
                report.received[i] > 0 || out.rekey().cost() == 0,
                "split={split}: member {} received nothing",
                member.id
            );
        }
        // Non-leaders receive only the pairwise group key (1 encryption)
        // unless they relayed for their leader.
        let non_leader_max = members
            .iter()
            .enumerate()
            .filter(|(i, _)| !is_leader(*i) && report.forwarded[*i] == 0)
            .map(|(i, _)| report.received[i])
            .max()
            .unwrap_or(0);
        assert_eq!(non_leader_max, 1, "split={split}");
    }
}

/// The random-ID ablation (§2.6): with random instead of topology-aware
/// IDs, splitting still works but the multicast paths get slower and the
/// shared encryptions travel farther — total received encryptions grow.
#[test]
fn random_ids_degrade_split_efficiency() {
    let mut rng = Rng12::seed_from_u64(0xAB1A);
    let spec = IdSpec::new(4, 16).unwrap();
    let topo = generate(&GtItmParams::small(), &mut rng);
    let net = RoutedNetwork::random_attachment(topo.into_graph(), 49, &mut rng);
    let server = HostId(48);

    // Topology-aware group…
    let mut aware = Group::new(
        &spec,
        server,
        3,
        PrimaryPolicy::SmallestRtt,
        AssignParams::for_depth(4),
    );
    for h in 0..40 {
        aware.join(HostId(h), &net, h as u64).unwrap();
    }
    // …and a random-ID group over the same hosts.
    let mut random = Group::new(
        &spec,
        server,
        3,
        PrimaryPolicy::SmallestRtt,
        AssignParams::for_depth(4),
    );
    let mut used = std::collections::HashSet::new();
    for h in 0..40 {
        let id = loop {
            let candidate = UserId::from_index(&spec, rng.gen_range(0..spec.id_space()));
            if used.insert(candidate.clone()) {
                break candidate;
            }
        };
        random.join_with_id(id, HostId(h), &net, h as u64);
    }

    // §2.6's argument is about *network-level* duplication: with random
    // IDs, users sharing an encryption sit in random regions, so each
    // delivered encryption crosses more physical links. Measure physical
    // hops per delivered encryption.
    let mut hops_per_delivery = [0f64; 2];
    for (g, slot) in [(&aware, 0), (&random, 1)] {
        let ids: Vec<UserId> = g.members().iter().map(|m| m.id.clone()).collect();
        let mut tree = ModifiedKeyTree::new(&spec);
        let mut arena = RekeyArena::new();
        tree.batch_rekey(&ids, &[], &mut rng, &mut arena).unwrap();
        let out = tree
            .batch_rekey(&[], &ids[..8], &mut rng, &mut arena)
            .unwrap();
        let mesh = g.tmesh();
        let report =
            tmesh_rekey_transport(&mesh, &net, out.encryptions(), TransportOptions::split());
        let received: u64 = report.received.iter().sum();
        let link_total = report.link_load.as_ref().expect("routed substrate").total();
        hops_per_delivery[slot] = link_total as f64 / received.max(1) as f64;
    }
    assert!(
        hops_per_delivery[0] < hops_per_delivery[1],
        "topology-aware IDs must move encryptions over fewer physical hops: {:.2} vs {:.2}",
        hops_per_delivery[0],
        hops_per_delivery[1]
    );
}
