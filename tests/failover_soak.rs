//! Failover soak: the replicated key server survives losing its primary.
//!
//! The runtime is built with `replicas = 3`: node 0 (the initial
//! primary) streams every membership mutation and interval boundary to
//! the follower replicas as replication-log entries, and the followers
//! replay them against identically seeded state machines — so at any
//! moment a follower's key tree is a prefix of the primary's history.
//! When a `FaultPlan` outage kills the primary, the followers detect the
//! heartbeat silence, elect the most-caught-up one, and the winner bumps
//! the server epoch and re-announces; members re-anchor on the promoted
//! primary through the existing epoch-bumped resync path plus
//! server-address rotation in their retry machinery.
//!
//! Three layers of verification:
//!  * a fast deterministic scenario — election, single promotion, the
//!    revived ex-primary rejoining as a follower, and byte-identical
//!    metrics across identically seeded runs;
//!  * a 1000-member chaos soak (ignored by default; `scripts/ci.sh`
//!    runs it in release) — the primary dies mid-interval under
//!    Gilbert–Elliott burst loss and concurrent join/leave churn, and
//!    the group still reaches a K-consistent finish with every live
//!    member holding the final group key;
//!  * a sim-vs-socket equivalence — a real-UDP session that loses its
//!    primary mid-run must end with exactly the roster and key tree of
//!    a never-faulted single-replica simulation, proving failover is
//!    invisible in the key material.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use group_rekeying::id::IdSpec;
use group_rekeying::net::{GridNetwork, MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::chaos;
use group_rekeying::proto::{
    ChurnEvent, Driver, GroupConfig, GroupRuntime, RuntimeConfig, ShardedGroupRuntime,
    UdpGroupDriver,
};
use group_rekeying::sim::{seeded_rng, FaultPlan, GilbertElliott};

const SEC: u64 = 1_000_000;

/// The UDP equivalence test below races wall-clock socket deadlines,
/// while the sim soaks are CPU-bound; parallel test threads would starve
/// the socket pump of real time. One test at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs the fast failover scenario and returns the runtime for
/// inspection: 48 members, primary killed mid-interval, revived later.
fn fast_failover_run() -> GroupRuntime<GridNetwork> {
    const MEMBERS: usize = 48;
    let net = GridNetwork::new(MEMBERS + 8, 1_000, 100);
    let spec = IdSpec::new(3, 4).unwrap();
    let group = GroupConfig::for_spec(&spec).k(2).seed(0xFA11);
    let config = RuntimeConfig::builder()
        .rekey_period(2 * SEC)
        .nack_grace(SEC / 2)
        .heartbeat_period(1 << 40)
        .retry_base(SEC / 4)
        .replicas(3)
        .seed(0xFA110)
        .build();

    // Kill the primary at 5 s — mid-way through the third rekey interval
    // (boundaries at 2/4/6 s) — and revive it at 13 s, well after a
    // follower has been promoted.
    let plan = FaultPlan::new().outage(chaos::SERVER_NODE, 5 * SEC, 13 * SEC);
    let mut rt = GroupRuntime::new(group, config, net).with_faults(plan);

    let mut trace: Vec<ChurnEvent> = (0..MEMBERS as u64)
        .map(|i| ChurnEvent::join(100_000 + i * 20_000))
        .collect();
    // Two voluntary leaves before the kill (replicated while the old
    // primary is alive) and one after (applied by the promoted one).
    trace.push(ChurnEvent::leave(3_200_000, 7));
    trace.push(ChurnEvent::leave(3_300_000, 19));
    trace.push(ChurnEvent::leave(16 * SEC, 31));
    rt.run_trace(&trace);
    rt.finish(60 * SEC);
    rt
}

/// One election, one promotion, the ex-primary back as a follower, and
/// every member current on the promoted primary's key tree.
#[test]
fn sim_failover_promotes_a_follower_and_recovers() {
    let _serial = serial();
    let rt = fast_failover_run();
    let report = rt.snapshot();

    assert_eq!(report.promotions, 1, "exactly one follower promoted");
    assert!(report.elections >= 1, "the outage must trigger an election");
    assert_eq!(report.restarts, 1, "the revived ex-primary rejoins once");
    assert_eq!(
        rt.server_epoch(),
        1,
        "promotion bumps the epoch exactly once"
    );
    assert!(
        report.resyncs > 0,
        "the epoch bump must resync members onto the new primary"
    );
    assert_eq!(report.departures, 3, "three voluntary leaves");
    assert_eq!(rt.group().len(), 48 - 3);
    assert_eq!(
        report.lost_mutations, 0,
        "no mutation raced the kill window"
    );

    rt.check_consistency()
        .expect("tables K-consistent after failover");
    let server_interval = rt.server().interval();
    let group_key = rt.server().tree().group_key().expect("non-empty group");
    for handle in 0..rt.member_count() {
        let Some(agent) = rt.agent(handle) else {
            assert!(
                matches!(handle, 7 | 19 | 31),
                "member {handle} lost its agent"
            );
            continue;
        };
        assert_eq!(agent.interval(), server_interval, "member {handle} lags");
        assert_eq!(
            agent.group_key(),
            Some(group_key),
            "member {handle} holds a stale key"
        );
    }
}

/// Identically seeded failover runs produce byte-identical metrics
/// snapshots — elections, promotions, and replication lag included.
#[test]
fn failover_runs_are_deterministic() {
    let _serial = serial();
    let a = fast_failover_run().snapshot().to_json();
    let b = fast_failover_run().snapshot().to_json();
    assert_eq!(a, b, "identical seeds must replay bit for bit");
}

/// The 1000-member chaos version: burst loss and jitter on the overlay
/// for the whole run, join/leave churn overlapping the kill window, the
/// primary killed mid-interval and revived a minute later. The group
/// must still converge: follower promoted, every victim healed, all
/// tables K-consistent, and every live member sealing under the final
/// group key.
#[test]
#[ignore = "large: ~1k nodes, replicated server, burst loss + churn + failover; ci.sh runs it in release"]
fn thousand_member_failover_under_burst_loss_and_churn() {
    let _serial = serial();
    const MEMBERS: usize = 1000;
    let params = PlanetLabParams {
        continent_hosts: vec![500, 300, 200, 150],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut seeded_rng(0xFA115));
    assert!(net.host_count() > MEMBERS);

    let spec = IdSpec::new(5, 8).unwrap();
    let group = GroupConfig::for_spec(&spec).k(4).seed(0xFA1150);
    let config = RuntimeConfig::builder().replicas(3).seed(0xFA115).build();
    let retry_cap = config.retry_cap();

    // Burst loss on every rekey copy throughout; the primary dies at
    // 95 s — mid-interval (boundaries every 10 s) and mid-churn — and
    // comes back at 160 s, long after a follower took over.
    let plan = FaultPlan::new()
        .burst_loss(GilbertElliott::moderate())
        .jitter(30_000)
        .outage(chaos::SERVER_NODE, 95 * SEC, 160 * SEC);
    let mut rt = GroupRuntime::new(group, config, net).with_faults(plan);

    let mut trace: Vec<ChurnEvent> = (0..MEMBERS as u64)
        .map(|i| ChurnEvent::join(SEC + i * 17_000))
        .collect();
    // Voluntary churn straddling the kill: leaves shortly before the
    // outage (replicated), inside it (retried onto the promoted
    // follower), and after the revival.
    for (i, at) in [80u64, 90, 94, 96, 100, 110, 130, 170].iter().enumerate() {
        trace.push(ChurnEvent::leave(at * SEC, i * 71 + 3));
    }
    let handles = rt.run_trace(&trace);
    rt.finish(260 * SEC);

    let report = rt.snapshot();
    assert!(report.promotions >= 1, "a follower must be promoted");
    assert!(report.elections >= 1, "the kill must trigger an election");
    assert!(report.restarts >= 1, "the ex-primary must rejoin");
    assert!(rt.server_epoch() >= 1, "promotion bumps the epoch");
    assert!(
        report.resyncs > 0,
        "epoch-bumped resync is the recovery path"
    );
    assert!(report.fault_loss_drops > 0, "burst loss must fire");
    assert!(report.nacks > 0, "lost copies must be NACKed");
    assert!(
        report.max_retry_attempts <= retry_cap,
        "retry counter escaped its cap: {} > {}",
        report.max_retry_attempts,
        retry_cap
    );

    // Roster accounting: every wrongful departure healed by a rejoin,
    // so the group holds exactly the never-departed joiners.
    assert_eq!(
        rt.group().len() as u64,
        MEMBERS as u64 - 8 + report.rejoins.saturating_sub(report.failures_detected),
        "roster must balance voluntary leaves and healed departures"
    );

    rt.check_consistency()
        .expect("tables K-consistent after the failover soak");
    let server_interval = rt.server().interval();
    let group_key = rt
        .server()
        .tree()
        .group_key()
        .expect("non-empty group has a key")
        .clone();
    let mut rng = seeded_rng(0xFA11_DA7A);
    let mut live = 0usize;
    for handle in handles {
        let Some(agent) = rt.agent(handle) else {
            continue; // voluntarily departed
        };
        live += 1;
        assert_eq!(
            agent.interval(),
            server_interval,
            "member {handle} lags the promoted primary"
        );
        assert_eq!(
            agent.group_key(),
            Some(&group_key),
            "member {handle} holds a stale group key"
        );
        let sealed = agent.seal_data(b"failover payload", &mut rng).unwrap();
        assert_eq!(agent.open_data(&sealed).unwrap(), b"failover payload");
    }
    assert_eq!(live, rt.group().len(), "agents match the oracle roster");
}

const UDP_MEMBERS: usize = 24;
const UDP_PERIOD: u64 = 150_000; // 150 ms real time per interval

fn udp_net() -> GridNetwork {
    GridNetwork::new(UDP_MEMBERS + 1, 1_000, 100)
}

fn udp_group() -> GroupConfig {
    GroupConfig::for_spec(&IdSpec::new(3, 4).unwrap())
        .k(2)
        .seed(11)
}

fn udp_config(replicas: usize) -> RuntimeConfig {
    RuntimeConfig::builder()
        .rekey_period(UDP_PERIOD)
        .nack_grace(UDP_PERIOD / 4)
        .heartbeat_period(1 << 40)
        .retry_base(UDP_PERIOD / 8)
        .replicas(replicas)
        .seed(5)
        .build()
}

/// Failover over real loopback UDP, pinned against a never-faulted
/// single-replica simulation: after the primary's socket goes dark and a
/// follower is promoted over real packets, the session must end with
/// exactly the baseline's roster and key tree — same members, same
/// group key, same per-member path keys. Deterministic replication makes
/// the promoted follower's state a replay of the primary's, and empty
/// beacon intervals draw no keys, so failover cannot perturb the
/// key-material stream.
#[test]
fn socket_failover_matches_single_replica_sim() {
    let _serial = serial();
    let window = udp_net().min_one_way();
    let mut sim = ShardedGroupRuntime::bootstrapped(
        udp_group(),
        udp_config(1),
        udp_net(),
        UDP_MEMBERS,
        4,
        window,
    )
    .expect("sharded bootstrap");
    let mut udp =
        UdpGroupDriver::bootstrapped(udp_group(), udp_config(3), udp_net(), UDP_MEMBERS, 4)
            .expect("udp bootstrap");

    // Baseline: two leaves, three intervals, no faults.
    sim.leave(4);
    assert!(Driver::run_to_interval(&mut sim, 2), "sim interval 2");
    sim.leave(17);
    assert!(Driver::run_to_interval(&mut sim, 3), "sim interval 3");
    assert!(sim.finish_run(), "sim flush converged");
    sim.verify_consistency().expect("sim tables K-consistent");

    // Same churn over UDP, but the primary dies between the leaves.
    udp.leave(4);
    assert!(
        udp.run_to_interval(2, Duration::from_secs(30)),
        "udp interval 2"
    );
    // Let the replication stream settle so the followers have applied
    // interval 2 before the kill (each call pumps at least one beat).
    for _ in 0..5 {
        udp.run_to_interval(2, Duration::from_millis(60));
    }
    udp.kill_server(0);
    udp.leave(17);
    // Give the election, promotion, re-anchor, and the retried leave a
    // few post-failover intervals to land.
    assert!(
        udp.run_to_interval(5, Duration::from_secs(60)),
        "udp never resumed intervals after the kill"
    );
    // The retried leave must land on the promoted primary before the
    // flush: pump until the roster shrinks (bounded, ~10 s worst case).
    for _ in 0..100 {
        if udp.group().len() == UDP_MEMBERS - 2 {
            break;
        }
        udp.run_to_interval(u64::MAX, Duration::from_millis(100));
    }
    assert_eq!(
        udp.group().len(),
        UDP_MEMBERS - 2,
        "the post-kill leave never reached the promoted primary"
    );
    assert!(udp.finish(Duration::from_secs(60)), "udp flush converged");
    udp.check_consistency().expect("udp tables K-consistent");

    assert_ne!(
        udp.primary_replica(),
        0,
        "a follower must be acting primary"
    );
    let report = udp.snapshot();
    assert!(report.promotions >= 1, "promotion must be counted");
    assert!(report.elections >= 1, "election must be counted");

    let (a, b) = (sim.server_fsm(), udp.server_fsm());
    // Identical rosters: same user IDs on the same hosts in the same
    // order (all joined_at stamps are bootstrap-time zero on both).
    assert_eq!(a.group().members(), b.group().members(), "rosters diverge");
    // Identical key trees, key for key.
    let gk = a.tree().group_key().expect("non-empty group");
    assert_eq!(Some(gk), b.tree().group_key(), "group keys diverge");
    for m in a.group().members() {
        let ka: Vec<_> = a.tree().user_path_keys(&m.id).collect();
        let kb: Vec<_> = b.tree().user_path_keys(&m.id).collect();
        assert_eq!(ka, kb, "path keys diverge for {:?}", m.id);
    }
    // Every survivor on both sides holds the shared group key.
    for h in 0..UDP_MEMBERS {
        match (sim.agent_of(h), udp.agent_of(h)) {
            (Some(x), Some(y)) => {
                assert_eq!(x.group_key(), Some(gk), "sim member {h} is stale");
                assert_eq!(y.group_key(), Some(gk), "udp member {h} is stale");
            }
            (None, None) => assert!(h == 4 || h == 17, "unexpected departure {h}"),
            (x, y) => panic!(
                "member {h} liveness diverges: sim {} udp {}",
                x.is_some(),
                y.is_some()
            ),
        }
    }
}
