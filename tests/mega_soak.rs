//! Mega soak: 65 536 members on the sharded windowed executor
//! ([`ShardedGroupRuntime`]) sustain two churned rekey intervals under 1%
//! copy loss — the CI-sized thumbnail of `bench_runtime`'s 65k/262k/1M
//! mega sweep. Exercises the bootstrap dealing pass (one O(N·D·B)
//! construction instead of 65k protocol joins), the window-barrier
//! cross-shard exchange, NACK/unicast recovery under loss, and the
//! deterministic snapshot merge.
//!
//! Ignored by default — `scripts/ci.sh` runs it in release mode:
//! `cargo test --release --test mega_soak -- --ignored`.

use group_rekeying::proto::{RuntimeConfig, ShardedGroupRuntime};
use rekey_bench::mega_runtime_fixture;
use rekey_bench::schema::validate_snapshot;

const MEMBERS: usize = 65_536;

#[test]
#[ignore = "soak-sized: 65k members × 2 churned intervals; ci.sh runs it in release"]
fn sharded_65k_soak_stays_current_under_loss() {
    let (net, group, leaves, finish, window) = mega_runtime_fixture(MEMBERS);
    let runtime_config = RuntimeConfig::builder().loss(0.01).seed(0x6E6A).build();
    let mut rt = ShardedGroupRuntime::bootstrapped(group, runtime_config, net, MEMBERS, 8, window)
        .expect("65k members fit the 16^5 ID space");
    assert_eq!(rt.member_count(), MEMBERS);
    assert_eq!(
        rt.server().interval(),
        1,
        "bootstrap welcomes at interval 1"
    );

    for &(at, handle) in &leaves {
        rt.leave_at(at, handle);
    }
    rt.finish(finish);

    let report = rt.snapshot();
    validate_snapshot(&report.to_json());
    assert_eq!(report.welcomes, MEMBERS as u64);
    assert_eq!(report.departures, leaves.len() as u64);
    assert_eq!(report.members, MEMBERS - leaves.len());
    assert_eq!(report.leave_acks, leaves.len() as u64);
    assert!(report.intervals >= 2, "got {} intervals", report.intervals);
    assert!(report.copies_lost > 0, "the 1% loss stream never drew");
    assert_eq!(report.checkpoints, 0, "the mega runtime journals nothing");
    assert_eq!(report.pings, 0, "heartbeats are disarmed at mega scale");
    // Every member applies every interval (recovery fills the loss holes),
    // so the apply histogram carries at least members × intervals samples
    // minus the churned-out leavers.
    assert!(
        report.apply_delay_us.count >= (MEMBERS as u64 - leaves.len() as u64) * report.intervals,
        "apply count {} too small for {} intervals",
        report.apply_delay_us.count,
        report.intervals
    );

    // Spot-check survivor agents across the whole handle range: current
    // interval, current group key.
    let server_interval = rt.server().interval();
    let group_key = rt
        .server()
        .tree()
        .group_key()
        .expect("group is non-empty")
        .clone();
    let leavers: Vec<usize> = leaves.iter().map(|&(_, h)| h).collect();
    let mut checked = 0;
    for handle in (0..MEMBERS).step_by(1009) {
        if leavers.contains(&handle) {
            continue;
        }
        let agent = rt.agent(handle).expect("survivor was welcomed");
        assert_eq!(agent.interval(), server_interval, "member {handle} lags");
        assert_eq!(
            agent.group_key(),
            Some(&group_key),
            "member {handle} holds a stale group key"
        );
        checked += 1;
    }
    assert!(checked >= 60, "spot check covered only {checked} members");
    for &handle in &leavers {
        assert!(rt.agent(handle).is_none(), "leaver {handle} kept its agent");
    }
}
