//! Metrics smoke: a 200-member churn soak under 2% copy loss must produce
//! a `MetricsSnapshot` whose JSON export satisfies the promised schema
//! (every counter, histogram series, and the span block present) and
//! whose core series carry real data — histograms with samples, spans in
//! the ring, fault counters consistent with the run.
//!
//! Ignored by default — `scripts/ci.sh` runs it in release mode:
//! `cargo test --release --test metrics_smoke -- --ignored`.

use group_rekeying::id::IdSpec;
use group_rekeying::metrics::json::has_key;
use group_rekeying::net::{MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
use group_rekeying::sim::seeded_rng;
use rekey_bench::schema::{validate_snapshot, SNAPSHOT_REQUIRED_KEYS};

const SEC: u64 = 1_000_000;
const MEMBERS: u64 = 200;

#[test]
#[ignore = "soak-sized: 200 nodes × ~20 intervals; ci.sh runs it in release"]
fn soak_snapshot_satisfies_schema_and_carries_data() {
    // Hosts are not recycled after a departure, so the substrate needs a
    // slot for every lifetime join (200 initial + 10 churn) plus the server.
    let params = PlanetLabParams {
        continent_hosts: vec![90, 65, 45, 30],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut seeded_rng(0x5A0E));
    assert!(net.host_count() > MEMBERS as usize + 11);

    let spec = IdSpec::new(4, 8).unwrap();
    let config = GroupConfig::for_spec(&spec).k(3).seed(0x5A0E5);
    let runtime_config = RuntimeConfig::builder().loss(0.02).seed(0x5A0E).build();
    let mut rt = GroupRuntime::new(config, runtime_config, net);

    let mut trace: Vec<ChurnEvent> = (0..MEMBERS)
        .map(|i| ChurnEvent::join(SEC + i * 40_000))
        .collect();
    for i in 0..10u64 {
        trace.push(ChurnEvent::leave(
            40 * SEC + i * 12 * SEC,
            (i as usize * 17) % 190,
        ));
        trace.push(ChurnEvent::join(42 * SEC + i * 12 * SEC));
    }
    rt.run_trace(&trace);
    rt.finish(201 * SEC);

    let snapshot = rt.snapshot();
    let json = snapshot.to_json();

    // Schema: every promised key is present — validate both through the
    // loud helper and key by key, so a failure names the exact hole.
    validate_snapshot(&json);
    for key in SNAPSHOT_REQUIRED_KEYS {
        assert!(has_key(&json, key), "snapshot JSON lost the {key:?} key");
    }

    // The series carry real data, not just schema-shaped zeros.
    assert!(snapshot.intervals >= 20, "got {}", snapshot.intervals);
    assert_eq!(snapshot.joins, MEMBERS + 10);
    assert_eq!(snapshot.departures, 10);
    assert!(snapshot.copies_lost > 0, "2% loss must fire");
    assert!(snapshot.tree_encryptions > 0);
    assert!(snapshot.welcomes >= MEMBERS);
    assert!(snapshot.peak_queue_depth > 0);
    assert_eq!(
        snapshot.partition_cuts, 0,
        "no fault plan, so no partition cuts"
    );

    let h = &snapshot.apply_delay_us;
    assert!(h.count > 0, "apply delays were recorded");
    assert!(h.min <= h.p50() && h.p50() <= h.p95() && h.p95() <= h.max);
    assert!(snapshot.batch_size.count >= snapshot.intervals / 2);
    assert!(snapshot.split_payload.count > 0);
    assert!(snapshot.forward_fanout.count > 0);
    assert!(
        snapshot.recovery_size.count > 0,
        "loss must trigger unicast recovery"
    );

    // Spans: the bounded ring holds the newest spans and reports drops.
    assert!(!snapshot.spans.is_empty());
    assert!(
        snapshot.spans.iter().any(|s| s.name == "interval"),
        "server interval spans present"
    );
    assert!(
        snapshot.spans.iter().any(|s| s.name == "apply"),
        "member apply spans present"
    );
    assert!(snapshot.spans.iter().all(|s| s.start <= s.end));
}
