//! Qualitative checks of the seven rekey transport protocols (Table 2):
//! the orderings the paper's Fig. 13 demonstrates must hold at test scale.

use std::collections::{HashMap, HashSet};

use group_rekeying::id::{IdSpec, UserId};
use group_rekeying::keytree::{ClusteredKeyTree, ModifiedKeyTree, OriginalKeyTree, RekeyArena};
use group_rekeying::net::gtitm::{generate, GtItmParams};
use group_rekeying::net::{HostId, RoutedNetwork};
use group_rekeying::nice::{NiceHierarchy, NiceParams};
use group_rekeying::proto::{
    cluster_rekey_transport, ipmc_rekey_transport, nice_rekey_transport, tmesh_rekey_transport,
    AssignParams, BandwidthReport, Group, RekeyProtocol, TransportOptions,
};
use group_rekeying::table::{oracle, PrimaryPolicy};
use group_rekeying::tmesh::TmeshGroup;
use rand::{Rng, SeedableRng};

struct Matrix {
    reports: HashMap<RekeyProtocol, BandwidthReport>,
    modified_cost: usize,
    original_cost: usize,
    members: usize,
}

/// Builds a small group, churns it once and runs all seven protocols.
fn run_matrix(seed: u64, users: usize, churn: usize) -> Matrix {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    let spec = IdSpec::new(4, 16).unwrap();
    let topo = generate(&GtItmParams::small(), &mut rng);
    let net = RoutedNetwork::random_attachment(topo.into_graph(), users + churn + 1, &mut rng);
    let server = HostId(users + churn);
    let mut group = Group::new(
        &spec,
        server,
        3,
        PrimaryPolicy::SmallestRtt,
        AssignParams::for_depth(4),
    );
    for h in 0..users {
        group.join(HostId(h), &net, h as u64).unwrap();
    }
    let base_ids: Vec<UserId> = group.members().iter().map(|m| m.id.clone()).collect();

    let mut modified = ModifiedKeyTree::new(&spec);
    let mut modified_arena = RekeyArena::new();
    modified
        .batch_rekey(&base_ids, &[], &mut rng, &mut modified_arena)
        .unwrap();
    let mut original = OriginalKeyTree::balanced(4, &base_ids);
    let mut cluster_tree = ClusteredKeyTree::new(&spec);
    let mut cluster_arena = RekeyArena::new();
    cluster_tree
        .batch_rekey(&base_ids, &[], &mut rng, &mut cluster_arena)
        .unwrap();

    // Churn interval.
    let mut leaves = Vec::new();
    for _ in 0..churn {
        let pick = rng.gen_range(0..group.len());
        let id = group.members()[pick].id.clone();
        group.leave(&id, &net).unwrap();
        leaves.push(id);
    }
    let mut joins = Vec::new();
    for j in 0..churn {
        joins.push(
            group
                .join(HostId(users + j), &net, 10_000 + j as u64)
                .unwrap()
                .id,
        );
    }
    let out_modified = modified
        .batch_rekey(&joins, &leaves, &mut rng, &mut modified_arena)
        .unwrap();
    let out_original = original.batch_rekey(&joins, &leaves);
    let out_cluster = cluster_tree
        .batch_rekey(&joins, &leaves, &mut rng, &mut cluster_arena)
        .unwrap();

    let members = group.members().to_vec();
    let hosts: Vec<HostId> = members.iter().map(|m| m.host).collect();
    let mesh = group.tmesh();
    let cluster_tables = oracle::build_all_tables(
        &spec,
        &members,
        &net,
        3,
        PrimaryPolicy::EarliestJoinAtBottom,
    );
    let cluster_mesh = TmeshGroup::from_tables(
        &spec,
        members.clone(),
        cluster_tables.into_iter().map(std::rc::Rc::new).collect(),
        std::rc::Rc::new(oracle::build_server_table(&spec, &members, server, &net, 3)),
        server,
    );
    let is_leader = |i: usize| cluster_tree.is_leader(&members[i].id);
    let cluster_of = |i: usize| -> Vec<usize> {
        let prefix = members[i].id.prefix(spec.depth() - 1);
        members
            .iter()
            .enumerate()
            .filter(|(_, m)| prefix.is_prefix_of_id(&m.id))
            .map(|(k, _)| k)
            .collect()
    };
    let mut nice = NiceHierarchy::new(NiceParams::default());
    for &h in &hosts {
        nice.join(h, &net);
    }
    let needs: HashMap<HostId, HashSet<usize>> = members
        .iter()
        .map(|m| {
            let path: HashSet<usize> = original.user_path(&m.id).into_iter().map(|n| n.0).collect();
            let needed = out_original
                .encryptions
                .iter()
                .enumerate()
                .filter(|(_, e)| path.contains(&e.encrypting.0))
                .map(|(i, _)| i)
                .collect();
            (m.host, needed)
        })
        .collect();

    let mut reports = HashMap::new();
    reports.insert(
        RekeyProtocol::P0,
        nice_rekey_transport(
            &nice,
            &net,
            server,
            &hosts,
            &needs,
            out_original.cost(),
            false,
        ),
    );
    reports.insert(
        RekeyProtocol::P0Split,
        nice_rekey_transport(
            &nice,
            &net,
            server,
            &hosts,
            &needs,
            out_original.cost(),
            true,
        ),
    );
    reports.insert(
        RekeyProtocol::P1,
        tmesh_rekey_transport(
            &mesh,
            &net,
            out_modified.encryptions(),
            TransportOptions::flood(),
        ),
    );
    reports.insert(
        RekeyProtocol::P1Split,
        tmesh_rekey_transport(
            &mesh,
            &net,
            out_modified.encryptions(),
            TransportOptions::split(),
        ),
    );
    reports.insert(
        RekeyProtocol::P1Cluster,
        cluster_rekey_transport(
            &cluster_mesh,
            &net,
            out_cluster.rekey().encryptions(),
            TransportOptions::flood(),
            &is_leader,
            &cluster_of,
        ),
    );
    reports.insert(
        RekeyProtocol::P1ClusterSplit,
        cluster_rekey_transport(
            &cluster_mesh,
            &net,
            out_cluster.rekey().encryptions(),
            TransportOptions::split(),
            &is_leader,
            &cluster_of,
        ),
    );
    reports.insert(
        RekeyProtocol::IpMulticast,
        ipmc_rekey_transport(&net, server, &hosts, out_original.cost()),
    );
    Matrix {
        reports,
        modified_cost: out_modified.cost(),
        original_cost: out_original.cost(),
        members: members.len(),
    }
}

#[test]
fn all_protocols_produce_reports_for_every_member() {
    let m = run_matrix(1, 48, 12);
    assert!(m.modified_cost > 0 && m.original_cost > 0);
    for p in RekeyProtocol::ALL {
        let r = &m.reports[&p];
        assert_eq!(r.received.len(), m.members, "{p:?}");
        assert_eq!(r.forwarded.len(), m.members, "{p:?}");
        assert!(r.link_load.is_some(), "{p:?} runs on a routed substrate");
    }
}

#[test]
fn splitting_dominates_non_splitting_per_user() {
    let m = run_matrix(3, 48, 12);
    for (with, without) in [
        (RekeyProtocol::P0Split, RekeyProtocol::P0),
        (RekeyProtocol::P1Split, RekeyProtocol::P1),
        (RekeyProtocol::P1ClusterSplit, RekeyProtocol::P1Cluster),
    ] {
        let rs = &m.reports[&with];
        let rn = &m.reports[&without];
        for i in 0..m.members {
            assert!(
                rs.received[i] <= rn.received[i],
                "{with:?} vs {without:?} at member {i}"
            );
            assert!(
                rs.forwarded[i] <= rn.forwarded[i],
                "{with:?} vs {without:?} at member {i}"
            );
        }
        let ls = rs.link_load.as_ref().unwrap().total();
        let ln = rn.link_load.as_ref().unwrap().total();
        assert!(
            ls < ln,
            "{with:?} total link load {ls} must undercut {without:?} {ln}"
        );
    }
}

#[test]
fn tmesh_splitting_beats_nice_splitting_at_the_top() {
    let m = run_matrix(3, 120, 30);
    // The paper: "it is more effective to perform message splitting in P2
    // and P4 (using T-mesh) than in P0′ (using NICE), especially for the
    // most loaded users and links." The two schemes deliver different
    // messages (modified vs original tree), so compare the most-loaded
    // user's forwarding normalised by message size.
    let p2 = &m.reports[&RekeyProtocol::P1Split];
    let p0s = &m.reports[&RekeyProtocol::P0Split];
    let max_fwd_p2 = p2.forwarded.iter().max().copied().unwrap() as f64 / m.modified_cost as f64;
    let max_fwd_p0s = p0s.forwarded.iter().max().copied().unwrap() as f64 / m.original_cost as f64;
    assert!(
        max_fwd_p2 < max_fwd_p0s,
        "most-loaded T-mesh user ({max_fwd_p2:.2} messages) must undercut NICE's ({max_fwd_p0s:.2})"
    );
}

#[test]
fn ip_multicast_has_no_user_forwarding_and_unit_link_stress() {
    let m = run_matrix(4, 40, 10);
    let r = &m.reports[&RekeyProtocol::IpMulticast];
    assert!(r.forwarded.iter().all(|&f| f == 0));
    assert!(r.received.iter().all(|&x| x == m.original_cost as u64));
    assert_eq!(r.link_load.as_ref().unwrap().max(), m.original_cost as u64);
}

#[test]
fn no_split_floods_full_message_to_everyone() {
    let m = run_matrix(5, 40, 10);
    let p1 = &m.reports[&RekeyProtocol::P1];
    assert!(p1.received.iter().all(|&x| x == m.modified_cost as u64));
    let p0 = &m.reports[&RekeyProtocol::P0];
    assert!(p0.received.iter().all(|&x| x == m.original_cost as u64));
}
