//! Runtime soak: N ≥ 1024 members on one event-driven clock, sustained
//! through a join/leave/crash churn trace over ≥ 50 rekey intervals with
//! 2% independent per-copy loss on the overlay rekey transport. The run
//! must end with the surviving members' *local* neighbor tables
//! K-consistent and every surviving member holding the current group key
//! (verified end to end by opening data sealed under it).
//!
//! Ignored by default — `scripts/ci.sh` runs it in release mode:
//! `cargo test --release --test runtime_soak -- --ignored`.

use group_rekeying::id::IdSpec;
use group_rekeying::net::{MatrixNetwork, Network, PlanetLabParams};
use group_rekeying::proto::{ChurnEvent, GroupConfig, GroupRuntime, RuntimeConfig};
use group_rekeying::sim::seeded_rng;

const SEC: u64 = 1_000_000;

#[test]
#[ignore = "large: ~1k nodes × 50+ intervals; ci.sh runs it in release"]
fn thousand_member_churn_soak_stays_consistent() {
    // A PlanetLab-style substrate with room for 1100 member hosts plus
    // the server: four continents as in the paper's matrix, scaled up.
    let params = PlanetLabParams {
        continent_hosts: vec![500, 300, 200, 150],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, &mut seeded_rng(0x50AC));
    assert!(net.host_count() >= 1101);

    let spec = IdSpec::new(5, 8).unwrap();
    let config = GroupConfig::for_spec(&spec).k(4).seed(0xC0FFEE);
    let runtime_config = RuntimeConfig::builder().loss(0.02).seed(0x50AC).build();
    let mut rt = GroupRuntime::new(config, runtime_config, net);

    // 1056 joins spread over the first two intervals (~19 s), then mixed
    // churn through the middle of the run: 40 voluntary leaves, 16 silent
    // crashes, and 8 late joins. The tail of the trace is quiet so every
    // crash is detected and every repair completes before shutdown.
    let mut trace: Vec<ChurnEvent> = (0..1056)
        .map(|i| ChurnEvent::join(SEC + i * 17_000))
        .collect();
    for i in 0..40u64 {
        trace.push(ChurnEvent::leave(
            60 * SEC + i * 9 * SEC,
            (i as usize * 23) % 1000,
        ));
    }
    for i in 0..16u64 {
        trace.push(ChurnEvent::crash(
            80 * SEC + i * 20 * SEC,
            1000 + i as usize,
        ));
    }
    for i in 0..8u64 {
        trace.push(ChurnEvent::join(100 * SEC + i * 30 * SEC));
    }
    rt.run_trace(&trace);
    // ≥ 50 rekey intervals at the default 10 s period; the last crash is
    // at 380 s, leaving > 2 heartbeat periods of quiet tail.
    rt.finish(521 * SEC);

    let report = rt.snapshot();
    assert!(
        report.intervals >= 50,
        "soak must span ≥ 50 intervals, got {}",
        report.intervals
    );
    assert_eq!(report.joins, 1064);
    assert_eq!(
        report.failures_detected, 16,
        "every silent crash must be detected by heartbeats"
    );
    assert_eq!(report.departures, 40 + 16);
    assert_eq!(rt.group().len(), 1064 - 56);
    assert!(rt.group().len() >= 1000, "group stays at four digits");
    assert!(report.copies_lost > 0, "2% loss must fire");
    assert!(report.nacks > 0, "lost copies must be NACKed");
    assert!(
        report.recovery_encryptions > 0,
        "NACKs must be answered with unicast recovery"
    );
    assert!(report.dead_letters > 0, "crashed nodes absorbed traffic");

    // Survivors' local tables are K-consistent for the final membership.
    rt.check_consistency()
        .expect("local tables are K-consistent after the soak");

    // Every surviving member holds the current group key: its agent is at
    // the server's interval and opens data sealed under the final key.
    let server_interval = rt.server().interval();
    let group_key = rt
        .server()
        .tree()
        .group_key()
        .expect("non-empty group has a key")
        .clone();
    let mut rng = seeded_rng(0xDA7A);
    let departed: std::collections::BTreeSet<usize> = (0..40usize)
        .map(|i| (i * 23) % 1000)
        .chain(1000..1016)
        .collect();
    let mut survivors = 0;
    for handle in 0..rt.member_count() {
        if departed.contains(&handle) {
            continue;
        }
        let agent = rt
            .agent(handle)
            .unwrap_or_else(|| panic!("surviving member {handle} lost its agent"));
        assert_eq!(
            agent.interval(),
            server_interval,
            "member {handle} lags the server"
        );
        assert_eq!(
            agent.group_key(),
            Some(&group_key),
            "member {handle} holds a stale group key"
        );
        let sealed = agent.seal_data(b"soak payload", &mut rng).unwrap();
        assert_eq!(agent.open_data(&sealed).unwrap(), b"soak payload");
        survivors += 1;
    }
    assert_eq!(survivors, 1064 - 56);
}
