//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use (`criterion_group!`
//! with the `name/config/targets` form, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`, `Throughput`, `BatchSize`,
//! `BenchmarkId`) backed by a simple wall-clock harness: warm-up, then
//! timed batches until the measurement budget is spent, reporting the mean
//! and min per-iteration time. No statistics engine, no HTML reports — but
//! `cargo bench` runs and prints comparable numbers. See
//! `vendor/rand_core` for why the workspace vendors stand-ins.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmarking group '{name}'");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut bencher);
        bencher.report(id, None);
    }
}

/// Identifies one benchmark within a group, e.g. `new("route", 512)`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { full: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { full: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { full: id }
    }
}

/// Units processed per iteration, used to report a rate next to the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortises setup; the stand-in treats all variants
/// the same (setup is always excluded from timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.full), self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.full), self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Mean and min per-iteration nanoseconds from the last `iter*` call.
    result: Option<(f64, f64)>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Bencher {
        Bencher { sample_size, warm_up, measurement, result: None }
    }

    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost so the measured
        // batches can be sized sensibly.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns =
            (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Aim for `sample_size` batches within the measurement budget.
        let budget_ns = self.measurement.as_nanos() as f64;
        let total_iters = (budget_ns / est_ns).clamp(1.0, 5e8) as u64;
        let samples = self.sample_size.max(1) as u64;
        let batch = (total_iters / samples).max(1);

        let mut mean_sum = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut taken = 0u64;
        let deadline = Instant::now() + self.measurement;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / batch as f64;
            mean_sum += per_iter;
            min_ns = min_ns.min(per_iter);
            taken += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((mean_sum / taken.max(1) as f64, min_ns));
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut est_ns: f64 = 1.0;
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            est_ns = est_ns.max(start.elapsed().as_nanos() as f64);
            warm_iters += 1;
            if warm_iters >= 100_000 {
                break;
            }
        }

        let budget_ns = self.measurement.as_nanos() as f64;
        let samples =
            ((budget_ns / est_ns.max(1.0)) as u64).clamp(1, self.sample_size.max(1) as u64 * 10);

        let mut mean_sum = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut taken = 0u64;
        let deadline = Instant::now() + self.measurement;
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let ns = start.elapsed().as_nanos() as f64;
            mean_sum += ns;
            min_ns = min_ns.min(ns);
            taken += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((mean_sum / taken.max(1) as f64, min_ns));
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        let Some((mean_ns, min_ns)) = self.result else {
            eprintln!("{id:<60} (no measurement)");
            return;
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} MiB/s", n as f64 * 1e9 / mean_ns / (1 << 20) as f64)
            }
            None => String::new(),
        };
        eprintln!("{id:<60} time: [{} .. {}]{rate}", fmt_ns(min_ns), fmt_ns(mean_ns));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a group of benchmark targets. Supports both the simple and the
/// `name = ..; config = ..; targets = ..` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn group_benches_run_and_record() {
        let mut criterion = quick();
        let mut group = criterion.benchmark_group("smoke");
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 8), &8u64, |b, &n| {
            b.iter_batched(|| vec![1u64; n as usize], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }

    fn target(criterion: &mut Criterion) {
        criterion.bench_function("noop", |b| b.iter(|| 1u32 + 1));
    }
    criterion_group!(
        name = benches;
        config = quick();
        targets = target
    );

    #[test]
    fn simple_group_macro_compiles() {
        benches();
    }
}
