//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API the workspace uses —
//! `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! `ProptestConfig::with_cases`, `TestCaseError`, `any`,
//! `collection::vec`, `bool::weighted`, and integer-range strategies — as a
//! deterministic random test runner. There is no shrinking: a failing case
//! reports its case number and seed instead. See `vendor/rand_core` for why
//! the workspace vendors these stand-ins.

pub mod test_runner {
    use std::fmt;

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The generated input was rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The RNG handed to strategies. Deterministic per (test name, case).
    pub type TestRng = rand_chacha::ChaCha12Rng;

    fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs `config.cases` deterministic cases of `property`, panicking on
    /// the first falsified case. Rejected cases (via `prop_assume!`) are
    /// retried with fresh input and a bounded rejection budget.
    pub fn run_cases<F>(config: &Config, name: &str, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        use rand::SeedableRng;

        let base = fnv1a(name);
        let max_rejects = config.cases.max(1) as u64 * 16;
        let mut rejects = 0u64;
        let mut stream = 0u64;
        for case in 0..config.cases {
            loop {
                let seed = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                stream += 1;
                let mut rng = TestRng::seed_from_u64(seed);
                match property(&mut rng) {
                    Ok(()) => break,
                    Err(TestCaseError::Reject(reason)) => {
                        rejects += 1;
                        assert!(
                            rejects <= max_rejects,
                            "proptest '{name}': too many rejected inputs ({reason})"
                        );
                    }
                    Err(TestCaseError::Fail(reason)) => {
                        panic!("proptest '{name}' falsified at case {case} (seed {seed:#x}): {reason}")
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// simply samples.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a strategy by mapping sampled values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy producing exactly one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident: $idx:tt),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// A uniform choice between boxed strategies of one value type: what
    /// [`prop_oneof!`](crate::prop_oneof) builds. Unlike real proptest
    /// there are no weights; every arm is equally likely.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].sample(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    rng.gen::<$ty>()
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy for any value of `T`, via its `Arbitrary` impl.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Size specification for collection strategies: an exact size or a
    /// half-open range, mirroring proptest's `Into<SizeRange>` arguments.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange { lo: exact, hi: exact + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty size range");
            SizeRange { lo: range.start, hi: range.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *range.start(), hi: *range.end() + 1 }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, 0..20)` / `vec(element, 24)`: vectors with sizes drawn
    /// from the given range (or exactly the given size).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `true` with the given probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(pub f64);

    impl Strategy for Weighted {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.0)
        }
    }

    /// `weighted(0.3)`: `true` 30% of the time.
    pub fn weighted(probability: f64) -> Weighted {
        Weighted(probability)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// `prop_oneof![s1, s2, ...]`: samples uniformly from one of the given
/// strategies (all must yield the same value type). Real proptest's
/// per-arm weights (`n => strategy`) are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::strategy::Strategy<Value = _>>),+])
    };
}

/// Declares property tests. Each `fn name(x in strategy, ..) { body }`
/// becomes a `#[test]`-able function (attributes, including `#[test]` and
/// doc comments, pass through) that runs the body over `config.cases`
/// sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(let $parm = $crate::strategy::Strategy::sample(&($strategy), __proptest_rng);)+
                let __proptest_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __proptest_result
            });
        }
    )*};
}

/// Like `assert!`, but returns a [`test_runner::TestCaseError`] so the
/// runner can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!`, via [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Like `assert_ne!`, via [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (retried with fresh input) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled ranges stay in bounds and assertions thread through.
        #[test]
        fn ranges_in_bounds(x in 3u64..90, v in crate::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!((3..90).contains(&x), "x={}", x);
            prop_assert!(v.len() < 16);
        }

        /// Exact-size `vec` strategies produce exactly that many elements.
        #[test]
        fn exact_size_vec(v in crate::collection::vec(crate::bool::weighted(0.5), 24)) {
            prop_assert_eq!(v.len(), 24);
        }

        /// `prop_assume` retries instead of failing.
        #[test]
        fn assume_filters(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run_cases(
            &crate::test_runner::Config::with_cases(8),
            "always_fails",
            |_rng| Err(TestCaseError::fail("nope")),
        );
    }
}
