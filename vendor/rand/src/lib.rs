//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! See `vendor/rand_core` for why this exists. The surface implemented here
//! is exactly what the workspace uses: `Rng::{gen, gen_range, gen_bool,
//! fill}`, `SeedableRng::seed_from_u64`, `rngs::StdRng` (ChaCha12-based,
//! like upstream 0.8), and `seq::SliceRandom::{shuffle, choose}`.
//! Deterministic per seed; not value-compatible with upstream.

pub use rand_core::{RngCore, SeedableRng};

pub mod distributions {
    use rand_core::RngCore;

    /// Types that can sample values of type `T` from an RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution: uniform over a type's natural range
    /// (for floats, uniform in `[0, 1)`).
    pub struct Standard;

    macro_rules! int_standard {
        ($($ty:ty),*) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }
    int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// Uniform sampling from range types, mirroring `rand 0.8`'s
/// `Rng::gen_range(range)` shape.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $ty
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let value = (rng.next_u64() as u128) % span;
                (start as i128 + value as i128) as $ty
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $ty = distributions::Distribution::sample(&distributions::Standard, rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $ty = distributions::Distribution::sample(&distributions::Standard, rng);
                start + unit * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Slices and other collections that can be filled with random data.
pub trait Fill {
    fn try_fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

/// Convenience extension methods over any `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value via the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from the given range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use rand_core::{RngCore, SeedableRng};

    /// The standard RNG: ChaCha12, matching upstream `rand 0.8`'s choice.
    #[derive(Clone, Debug)]
    pub struct StdRng(rand_chacha::ChaCha12Rng);

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(rand_chacha::ChaCha12Rng::from_seed(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&c));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_400..3_600).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }

    #[test]
    fn fill_fills_bytes() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(4);
        let mut buf = [0u8; 32];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
