//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha keystream generator (12- and 20-round
//! variants) over the `rand_core` traits, so the workspace's deterministic
//! simulations get a high-quality, seedable, cloneable stream without
//! network access. Wired in via `[patch.crates-io]`; see `vendor/rand_core`
//! for the rationale. Streams are deterministic per seed but not
//! value-compatible with upstream `rand_chacha`.

use rand_core::{le_u32, RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (12 or 20).
fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize, out: &mut [u32; 16]) {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CHACHA_CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = state[i].wrapping_add(initial[i]);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            /// Next unread word in `buffer`; 16 means "empty".
            cursor: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut out = [0u32; 16];
                chacha_block(&self.key, self.counter, $rounds, &mut out);
                self.counter = self.counter.wrapping_add(1);
                self.buffer = out;
                self.cursor = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, word) in key.iter_mut().enumerate() {
                    *word = le_u32(&seed[i * 4..]);
                }
                $name { key, counter: 0, buffer: [0u32; 16], cursor: 16 }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.cursor >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.cursor];
                self.cursor += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let word = self.next_u32().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&word[..n]);
                }
            }
        }
    };
}

chacha_rng!(ChaCha12Rng, 12, "A ChaCha RNG using 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "A ChaCha RNG using 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(1);
        let mut c = ChaCha12Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_covers_unaligned_lengths() {
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn word_stream_is_reasonably_balanced() {
        // Cheap sanity check that the keystream is not constant or heavily
        // biased: across 4096 words, every byte value should appear.
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let mut seen = [false; 256];
        for _ in 0..4096 {
            for b in rng.next_u32().to_le_bytes() {
                seen[b as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
