//! Offline stand-in for the `rand_core` crate.
//!
//! The build environment for this workspace has no network access and no
//! pre-populated cargo registry, so the real `rand` stack cannot be fetched.
//! This crate provides the subset of the `rand_core` 0.6 API that the
//! workspace uses, with the same trait shapes, so the code compiles
//! unmodified. It is wired in through `[patch.crates-io]` in the workspace
//! root `Cargo.toml`.
//!
//! The implementations here are real (not no-ops): generators produce
//! deterministic, well-distributed streams, which is all the simulations
//! need. The streams are NOT guaranteed to match upstream `rand`
//! value-for-value; every test in the workspace is seed-robust by design.

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, fixed-size byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a new instance from the given seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a new instance, expanding a `u64` into a full seed with
    /// splitmix64 (the same construction upstream uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Helper: reads little-endian `u32` words out of a byte slice.
pub fn le_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}
